package genome

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromStringRoundtrip(t *testing.T) {
	in := "ACGTNacgtn"
	s, err := FromString(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "ACGTNACGTN" {
		t.Fatalf("got %q", got)
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("ACGX"); err == nil {
		t.Fatal("expected error for invalid base")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{BaseA: BaseT, BaseT: BaseA, BaseC: BaseG, BaseG: BaseC, BaseN: BaseN}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%c)=%c want %c", BaseToChar(b), BaseToChar(got), BaseToChar(want))
		}
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustFromString("AACGT")
	rc := s.ReverseComplement()
	if got := rc.String(); got != "ACGTT" {
		t.Fatalf("got %q want ACGTT", got)
	}
	// Involution.
	if !rc.ReverseComplement().Equal(s) {
		t.Fatal("reverse complement is not an involution")
	}
}

func TestHasN(t *testing.T) {
	if MustFromString("ACGT").HasN() {
		t.Fatal("ACGT should not report N")
	}
	if !MustFromString("ACNT").HasN() {
		t.Fatal("ACNT should report N")
	}
}

func TestEncode2BitRejectsN(t *testing.T) {
	if _, err := Encode(MustFromString("ACN"), Format2Bit); err == nil {
		t.Fatal("expected error encoding N in 2-bit format")
	}
}

func TestEncodeDecodeAllFormats(t *testing.T) {
	seqs := []string{"", "A", "ACGT", "ACGTACGTA", "NNNN", "ACGNTAGCTANNGT"}
	for _, f := range []Format{FormatASCII, Format3Bit, FormatOneHot} {
		for _, str := range seqs {
			s := MustFromString(str)
			enc, err := Encode(s, f)
			if err != nil {
				t.Fatalf("%v %q: %v", f, str, err)
			}
			dec, err := Decode(enc, len(s), f)
			if err != nil {
				t.Fatalf("%v %q: %v", f, str, err)
			}
			if !dec.Equal(s) {
				t.Fatalf("%v %q: got %q", f, str, dec.String())
			}
		}
	}
	// 2-bit only for N-free.
	for _, str := range []string{"", "A", "ACGT", "ACGTACGTA"} {
		s := MustFromString(str)
		enc, err := Encode(s, Format2Bit)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc, len(s), Format2Bit)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(s) {
			t.Fatalf("2bit %q: got %q", str, dec.String())
		}
	}
}

func TestBitsPerBase(t *testing.T) {
	if Format2Bit.BitsPerBase() != 2 || Format3Bit.BitsPerBase() != 3 ||
		FormatOneHot.BitsPerBase() != 4 || FormatASCII.BitsPerBase() != 8 {
		t.Fatal("unexpected bits per base")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 512)
		s := make(Seq, n)
		for i := range s {
			s[i] = byte(rng.Intn(5)) // include N
		}
		for _, fmt := range []Format{FormatASCII, Format3Bit, FormatOneHot} {
			enc, err := Encode(s, fmt)
			if err != nil {
				return false
			}
			dec, err := Decode(enc, n, fmt)
			if err != nil || !dec.Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIsNFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Random(rng, 10000)
	if g.HasN() {
		t.Fatal("Random genome must be N-free")
	}
	if len(g) != 10000 {
		t.Fatalf("len %d", len(g))
	}
}

func TestDonorAppliesVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := Random(rng, 50000)
	p := HumanLikeProfile()
	donor, variants := Donor(rng, ref, p)
	if len(variants) == 0 {
		t.Fatal("expected some variants at human-like rates over 50kb")
	}
	// Donor length differs from ref by net indel length.
	net := 0
	nSub := 0
	for _, v := range variants {
		switch v.Type {
		case Insertion:
			net += len(v.Bases)
		case Deletion:
			net -= len(v.Bases)
		case Substitution:
			nSub++
			if len(v.Bases) != 1 {
				t.Fatal("substitution must carry exactly one base")
			}
			if v.Bases[0] == ref[v.Pos] {
				t.Fatal("substitution must change the base")
			}
		}
	}
	if len(donor) != len(ref)+net {
		t.Fatalf("donor len %d want %d", len(donor), len(ref)+net)
	}
	if nSub == 0 {
		t.Fatal("expected substitutions")
	}
	// SNP rate should be within a loose factor of the configured rate
	// (hotspots raise the effective rate above the base rate).
	rate := float64(nSub) / float64(len(ref))
	if rate < p.SNPRate*0.5 || rate > p.SNPRate*8 {
		t.Fatalf("snp rate %.5f far from configured %.5f", rate, p.SNPRate)
	}
}

func TestDonorVariantsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := Random(rng, 20000)
	_, variants := Donor(rng, ref, DivergentProfile())
	for i := 1; i < len(variants); i++ {
		if variants[i].Pos < variants[i-1].Pos {
			t.Fatal("variants not sorted by position")
		}
	}
}

func TestDonorDeterministicGivenSeed(t *testing.T) {
	ref := Random(rand.New(rand.NewSource(9)), 5000)
	d1, _ := Donor(rand.New(rand.NewSource(42)), ref, HumanLikeProfile())
	d2, _ := Donor(rand.New(rand.NewSource(42)), ref, HumanLikeProfile())
	if !d1.Equal(d2) {
		t.Fatal("Donor must be deterministic for a fixed seed")
	}
}

func TestGeometricLenSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n1, total := 0, 20000
	for i := 0; i < total; i++ {
		l := geometricLen(rng, 20)
		if l < 1 || l > 20 {
			t.Fatalf("length %d out of range", l)
		}
		if l == 1 {
			n1++
		}
	}
	// ~70% should be single-base (Property 3 skew).
	frac := float64(n1) / float64(total)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("single-base fraction %.2f outside [0.6,0.8]", frac)
	}
}
