// Package genome models DNA sequences, their packed encodings, and the
// genetic-variation processes that SAGe's compression algorithm exploits.
//
// The paper's key insight (§4) is that genomic information follows trends
// shaped by sequencing technology and genetic phenomena. This package
// provides the ground truth side of that: reference genomes, donor genomes
// derived from them through clustered variation (Property 1: mutations
// cluster in regions), and the base-level encodings (2-bit, 3-bit with N,
// ASCII) that SAGe's Read Construction Unit can emit (§5.2.2 ⑫).
package genome

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base codes. The DNA alphabet is A, C, G, T plus N for unknown bases
// (§5.1.4: N expands the alphabet to five characters, breaking 2-bit
// encoding — a corner case).
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
	BaseN = 4
)

// alphabet maps base codes to ASCII.
var alphabet = [5]byte{'A', 'C', 'G', 'T', 'N'}

// codeOf maps ASCII (upper or lower case) to base codes; 0xff = invalid.
var codeOf [256]byte

func init() {
	for i := range codeOf {
		codeOf[i] = 0xff
	}
	for c, b := range map[byte]byte{
		'A': BaseA, 'C': BaseC, 'G': BaseG, 'T': BaseT, 'N': BaseN,
		'a': BaseA, 'c': BaseC, 'g': BaseG, 't': BaseT, 'n': BaseN,
	} {
		codeOf[c] = b
	}
}

// BaseToChar returns the ASCII character for a base code.
func BaseToChar(b byte) byte {
	if int(b) < len(alphabet) {
		return alphabet[b]
	}
	return '?'
}

// CharToBase returns the base code for an ASCII character and whether the
// character is a valid DNA letter.
func CharToBase(c byte) (byte, bool) {
	b := codeOf[c]
	return b, b != 0xff
}

// Complement returns the Watson–Crick complement of a base code
// (N complements to N).
func Complement(b byte) byte {
	switch b {
	case BaseA:
		return BaseT
	case BaseT:
		return BaseA
	case BaseC:
		return BaseG
	case BaseG:
		return BaseC
	default:
		return BaseN
	}
}

// Seq is a DNA sequence of base codes (one byte per base, values 0..4).
type Seq []byte

// FromString parses an ASCII DNA string into a Seq.
func FromString(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		b, ok := CharToBase(s[i])
		if !ok {
			return nil, fmt.Errorf("genome: invalid base %q at %d", s[i], i)
		}
		out[i] = b
	}
	return out, nil
}

// AppendFrom parses ASCII DNA bytes and appends the base codes to dst,
// returning the extended slice. It is the allocation-free counterpart of
// FromString for callers that own a reusable or arena-backed buffer.
func AppendFrom(dst Seq, ascii []byte) (Seq, error) {
	for i := 0; i < len(ascii); i++ {
		b := codeOf[ascii[i]]
		if b == 0xff {
			return dst, fmt.Errorf("genome: invalid base %q at %d", ascii[i], i)
		}
		dst = append(dst, b)
	}
	return dst, nil
}

// AppendASCII renders s as ASCII appended to dst, returning the extended
// slice. It is the allocation-free counterpart of Seq.String for callers
// that own a reusable line buffer.
func AppendASCII(dst []byte, s Seq) []byte {
	for _, c := range s {
		dst = append(dst, BaseToChar(c))
	}
	return dst
}

// AppendReverseComplement appends the reverse complement of src to dst,
// returning the extended slice. dst and src must not overlap.
func AppendReverseComplement(dst, src Seq) Seq {
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, Complement(src[i]))
	}
	return dst
}

// MustFromString is FromString that panics on invalid input; for tests
// and literals.
func MustFromString(s string) Seq {
	q, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the sequence as ASCII.
func (s Seq) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		b.WriteByte(BaseToChar(c))
	}
	return b.String()
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// ReverseComplement returns the reverse complement of s.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = Complement(b)
	}
	return out
}

// HasN reports whether the sequence contains any unknown (N) base.
func (s Seq) HasN() bool {
	for _, b := range s {
		if b == BaseN {
			return true
		}
	}
	return false
}

// Equal reports whether two sequences are identical.
func (s Seq) Equal(o Seq) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Format identifies an output encoding the Read Construction Unit can emit
// (§5.2.2 ⑫: "2-bit encoded, 3-bit encoded for reads with N, ASCII, etc.").
type Format uint8

const (
	// FormatASCII is one byte per base ('A', 'C', 'G', 'T', 'N').
	FormatASCII Format = iota
	// Format2Bit packs 4 bases per byte; valid only for N-free sequences.
	Format2Bit
	// Format3Bit packs bases 3 bits each (supports N).
	Format3Bit
	// FormatOneHot emits 4 bits per base with exactly one bit set
	// (N maps to 0000), the encoding used by systolic-array mappers.
	FormatOneHot
)

func (f Format) String() string {
	switch f {
	case FormatASCII:
		return "ascii"
	case Format2Bit:
		return "2bit"
	case Format3Bit:
		return "3bit"
	case FormatOneHot:
		return "1hot"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// BitsPerBase reports the encoded width of one base in format f.
func (f Format) BitsPerBase() int {
	switch f {
	case FormatASCII:
		return 8
	case Format2Bit:
		return 2
	case Format3Bit:
		return 3
	case FormatOneHot:
		return 4
	default:
		return 8
	}
}

// Encode renders s in format f. Encoding an N in Format2Bit returns an
// error, mirroring the hardware's corner-case path (§5.1.4).
func Encode(s Seq, f Format) ([]byte, error) {
	switch f {
	case FormatASCII:
		return []byte(s.String()), nil
	case Format2Bit:
		out := make([]byte, (len(s)+3)/4)
		for i, b := range s {
			if b > BaseT {
				return nil, fmt.Errorf("genome: base N at %d not encodable in 2-bit format", i)
			}
			out[i/4] |= b << uint((3-i%4)*2)
		}
		return out, nil
	case Format3Bit:
		out := make([]byte, (len(s)*3+7)/8)
		for i, b := range s {
			pos := i * 3
			for k := 0; k < 3; k++ {
				bit := (b >> uint(2-k)) & 1
				out[(pos+k)/8] |= bit << uint(7-(pos+k)%8)
			}
		}
		return out, nil
	case FormatOneHot:
		out := make([]byte, (len(s)+1)/2)
		for i, b := range s {
			var nib byte
			if b <= BaseT {
				nib = 1 << (3 - b)
			}
			if i%2 == 0 {
				out[i/2] |= nib << 4
			} else {
				out[i/2] |= nib
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("genome: unknown format %v", f)
	}
}

// Decode parses data produced by Encode back into a Seq of length n.
func Decode(data []byte, n int, f Format) (Seq, error) {
	out := make(Seq, n)
	switch f {
	case FormatASCII:
		if len(data) < n {
			return nil, fmt.Errorf("genome: ascii data too short: %d < %d", len(data), n)
		}
		for i := 0; i < n; i++ {
			b, ok := CharToBase(data[i])
			if !ok {
				return nil, fmt.Errorf("genome: invalid base %q at %d", data[i], i)
			}
			out[i] = b
		}
	case Format2Bit:
		if len(data)*4 < n {
			return nil, fmt.Errorf("genome: 2-bit data too short")
		}
		for i := 0; i < n; i++ {
			out[i] = (data[i/4] >> uint((3-i%4)*2)) & 3
		}
	case Format3Bit:
		if len(data)*8 < n*3 {
			return nil, fmt.Errorf("genome: 3-bit data too short")
		}
		for i := 0; i < n; i++ {
			pos := i * 3
			var b byte
			for k := 0; k < 3; k++ {
				bit := (data[(pos+k)/8] >> uint(7-(pos+k)%8)) & 1
				b = b<<1 | bit
			}
			if b > BaseN {
				return nil, fmt.Errorf("genome: invalid 3-bit code %d at %d", b, i)
			}
			out[i] = b
		}
	case FormatOneHot:
		if len(data)*2 < n {
			return nil, fmt.Errorf("genome: 1-hot data too short")
		}
		for i := 0; i < n; i++ {
			var nib byte
			if i%2 == 0 {
				nib = data[i/2] >> 4
			} else {
				nib = data[i/2] & 0xf
			}
			switch nib {
			case 0b1000:
				out[i] = BaseA
			case 0b0100:
				out[i] = BaseC
			case 0b0010:
				out[i] = BaseG
			case 0b0001:
				out[i] = BaseT
			case 0:
				out[i] = BaseN
			default:
				return nil, fmt.Errorf("genome: invalid 1-hot nibble %04b at %d", nib, i)
			}
		}
	default:
		return nil, fmt.Errorf("genome: unknown format %v", f)
	}
	return out, nil
}

// Random returns a uniformly random N-free genome of length n.
func Random(rng *rand.Rand, n int) Seq {
	out := make(Seq, n)
	for i := range out {
		out[i] = byte(rng.Intn(4))
	}
	return out
}
