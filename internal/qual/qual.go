package qual

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sage/internal/fastq"
)

// symbolBits is the bit width of one Phred score (alphabet 0..63).
const symbolBits = 6

// Context model dimensions: the previous score quantized to 16 buckets,
// the score before that to 8 buckets, crossed with the 63 internal nodes
// of the 6-level binary decomposition tree.
const (
	prev1Buckets = 16
	prev2Buckets = 8
	treeNodes    = 1 << symbolBits // node indices 1..63 used
	numContexts  = prev1Buckets * prev2Buckets * treeNodes
)

func contextBase(q1, q2 byte) int {
	b1 := int(q1) >> 2 // 0..15
	if b1 >= prev1Buckets {
		b1 = prev1Buckets - 1
	}
	b2 := int(q2) >> 3 // 0..7
	if b2 >= prev2Buckets {
		b2 = prev2Buckets - 1
	}
	return (b1*prev2Buckets + b2) * treeNodes
}

// probsPool recycles the 16 KiB adaptive-probability table across
// Compress/Decompress calls (and across the shard workers that make
// them): the table dominates the codec's per-call allocation cost.
// Tables are re-initialized on checkout, so pool reuse is invisible to
// the coded stream.
var probsPool = sync.Pool{New: func() any { return new([numContexts]uint16) }}

func getProbs() *[numContexts]uint16 {
	p := probsPool.Get().(*[numContexts]uint16)
	for i := range p {
		p[i] = probInit
	}
	return p
}

// Compress encodes the concatenated quality strings of reads losslessly.
// Per-read lengths are NOT stored: the decoder receives them from the DNA
// side of the container, which keeps the stream aligned with the bases
// (§5.1.5: "SAGe maintains the same order for DNA bases and quality
// scores").
func Compress(quals [][]byte) ([]byte, error) {
	enc := getEncoder()
	defer putEncoder(enc)
	probs := getProbs()
	defer probsPool.Put(probs)
	for _, q := range quals {
		q1, q2 := byte(0), byte(0)
		for _, s := range q {
			if s > fastq.MaxQuality {
				return nil, fmt.Errorf("qual: score %d exceeds alphabet max %d", s, fastq.MaxQuality)
			}
			base := contextBase(q1, q2)
			node := 1
			for i := symbolBits - 1; i >= 0; i-- {
				bit := int(s>>uint(i)) & 1
				enc.encodeBit(&probs[base+node], bit)
				node = node<<1 | bit
			}
			q2, q1 = q1, s
		}
	}
	body := enc.flush()
	out := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint64(out, uint64(len(body)))
	copy(out[8:], body)
	return out, nil
}

// Decompress decodes scores for reads with the given lengths.
func Decompress(data []byte, lengths []int) ([][]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("qual: truncated stream header")
	}
	bodyLen := binary.LittleEndian.Uint64(data)
	if uint64(len(data)-8) < bodyLen {
		return nil, fmt.Errorf("qual: stream body truncated: have %d want %d", len(data)-8, bodyLen)
	}
	var dec rcDecoder
	dec.init(data[8 : 8+bodyLen])
	probs := getProbs()
	defer probsPool.Put(probs)
	// All scores decode into one flat buffer sub-sliced per read
	// (capacity-clipped, so an appending caller reallocates rather than
	// overruns a neighbor): two allocations for the whole block instead
	// of one per read. The per-read slices share backing memory and are
	// retained together — the same ownership rule batch records follow.
	total := 0
	for _, l := range lengths {
		total += l
	}
	flat := make([]byte, total)
	out := make([][]byte, len(lengths))
	for r, l := range lengths {
		q := flat[:l:l]
		flat = flat[l:]
		q1, q2 := byte(0), byte(0)
		for i := 0; i < l; i++ {
			base := contextBase(q1, q2)
			node := 1
			for b := 0; b < symbolBits; b++ {
				bit := dec.decodeBit(&probs[base+node])
				node = node<<1 | bit
			}
			s := byte(node - treeNodes)
			q[i] = s
			q2, q1 = q1, s
		}
		out[r] = q
	}
	return out, nil
}
