// Package qual implements SAGe's lossless quality-score codec (§5.1.5).
//
// Quality scores lack the long-range redundancy of DNA bases, so SAGe —
// like Spring and the other genomic compressors it cites — compresses them
// as a separate stream with a context model: each Phred score is coded
// bit-by-bit with an adaptive binary range coder, conditioned on the two
// preceding scores in the read. Decompression runs on the host CPU in the
// paper; the codec here backs both the SAGe container and the Spring-like
// baseline, so their quality ratios match (Table 2: "SAGe's quality score
// (de)compression is based on the same software used in [Spring]").
package qual

// The binary range coder follows the carry-propagating construction used
// by LZMA: 32-bit range, 12-bit adaptive probabilities, 5-bit adaptation
// shift.

import "sync"

const (
	probBits  = 12
	probInit  = 1 << (probBits - 1)
	adaptRate = 5
	topValue  = 1 << 24
)

type rcEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// encPool recycles encoders (and with them the grown output buffer)
// across calls and workers. flush hands out a view of e.out, so callers
// must copy the body before putEncoder returns the buffer to the pool.
var encPool = sync.Pool{New: func() any { return new(rcEncoder) }}

func getEncoder() *rcEncoder {
	e := encPool.Get().(*rcEncoder)
	e.low, e.rng, e.cache, e.cacheSize, e.out = 0, 0xFFFFFFFF, 0, 1, e.out[:0]
	return e
}

func putEncoder(e *rcEncoder) { encPool.Put(e) }

// encodeBit codes bit under the adaptive probability *p (probability of
// the bit being 0, in 1/4096 units) and updates *p.
func (e *rcEncoder) encodeBit(p *uint16, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> adaptRate
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> adaptRate
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *rcEncoder) shiftLow() {
	if e.low < 0xFF000000 || e.low > 0xFFFFFFFF {
		temp := e.cache
		for {
			e.out = append(e.out, byte(uint64(temp)+(e.low>>32)))
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rcEncoder) flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rcDecoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
}

// init primes a (possibly stack-allocated) decoder over in.
func (d *rcDecoder) init(in []byte) {
	*d = rcDecoder{rng: 0xFFFFFFFF, in: in}
	// The first output byte of the encoder is always 0 (cache priming);
	// consume it plus 4 code bytes.
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
}

func (d *rcDecoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

func (d *rcDecoder) decodeBit(p *uint16) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> adaptRate
		bit = 0
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> adaptRate
		bit = 1
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}
