package qual

import (
	"math/rand"
	"testing"
)

func benchQuals() ([][]byte, []int) {
	rng := rand.New(rand.NewSource(9))
	quals := make([][]byte, 500)
	lengths := make([]int, len(quals))
	for i := range quals {
		q := make([]byte, 150)
		level := 36.0
		for j := range q {
			level += rng.NormFloat64() * 1.5
			if level < 2 {
				level = 2
			}
			if level > 41 {
				level = 41
			}
			q[j] = byte(level)
		}
		quals[i] = q
		lengths[i] = len(q)
	}
	return quals, lengths
}

func BenchmarkQualCompress(b *testing.B) {
	quals, _ := benchQuals()
	total := 0
	for _, q := range quals {
		total += len(q)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(quals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQualDecompress(b *testing.B) {
	quals, lengths := benchQuals()
	data, err := Compress(quals)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, q := range quals {
		total += len(q)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(data, lengths); err != nil {
			b.Fatal(err)
		}
	}
}
