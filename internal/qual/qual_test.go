package qual

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sage/internal/fastq"
)

func TestRoundtripSimple(t *testing.T) {
	quals := [][]byte{
		{30, 30, 30, 12, 40},
		{0, 1, 2, 3},
		{},
		{63},
	}
	data, err := Compress(quals)
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{5, 4, 0, 1}
	got, err := Decompress(data, lengths)
	if err != nil {
		t.Fatal(err)
	}
	for i := range quals {
		if len(got[i]) != len(quals[i]) {
			t.Fatalf("read %d: len %d want %d", i, len(got[i]), len(quals[i]))
		}
		for j := range quals[i] {
			if got[i][j] != quals[i][j] {
				t.Fatalf("read %d pos %d: %d want %d", i, j, got[i][j], quals[i][j])
			}
		}
	}
}

func TestRejectsOutOfRange(t *testing.T) {
	if _, err := Compress([][]byte{{fastq.MaxQuality + 1}}); err == nil {
		t.Fatal("expected error for out-of-range score")
	}
}

func TestTruncatedStream(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3}, []int{1}); err == nil {
		t.Fatal("expected error for truncated header")
	}
	data, err := Compress([][]byte{{10, 20, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(data[:len(data)-1], nil); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestCompressesCorrelatedScores(t *testing.T) {
	// Realistic qualities (correlated, narrow distribution) must
	// compress well below raw size; that is the whole point of the
	// context model.
	rng := rand.New(rand.NewSource(1))
	var quals [][]byte
	total := 0
	for r := 0; r < 200; r++ {
		q := make([]byte, 150)
		level := 36.0
		for i := range q {
			level += rng.NormFloat64() * 1.5
			if level < 2 {
				level = 2
			}
			if level > 41 {
				level = 41
			}
			q[i] = byte(level)
		}
		quals = append(quals, q)
		total += len(q)
	}
	data, err := Compress(quals)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(total) / float64(len(data))
	if ratio < 1.8 {
		t.Fatalf("compression ratio %.2f too low for correlated scores", ratio)
	}
	lengths := make([]int, len(quals))
	for i := range quals {
		lengths[i] = len(quals[i])
	}
	got, err := Decompress(data, lengths)
	if err != nil {
		t.Fatal(err)
	}
	for i := range quals {
		for j := range quals[i] {
			if got[i][j] != quals[i][j] {
				t.Fatal("roundtrip mismatch")
			}
		}
	}
}

func TestConstantScoresCompressExtremely(t *testing.T) {
	q := make([]byte, 10000)
	for i := range q {
		q[i] = 40
	}
	data, err := Compress([][]byte{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 400 {
		t.Fatalf("constant stream compressed to %d bytes; expected <400", len(data))
	}
}

// Property: arbitrary score sequences roundtrip.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		quals := make([][]byte, n)
		lengths := make([]int, n)
		for i := range quals {
			l := rng.Intn(300)
			q := make([]byte, l)
			for j := range q {
				q[j] = byte(rng.Intn(fastq.MaxQuality + 1))
			}
			quals[i] = q
			lengths[i] = l
		}
		data, err := Compress(quals)
		if err != nil {
			return false
		}
		got, err := Decompress(data, lengths)
		if err != nil {
			return false
		}
		for i := range quals {
			if len(got[i]) != len(quals[i]) {
				return false
			}
			for j := range quals[i] {
				if got[i][j] != quals[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The range coder itself must roundtrip raw bit sequences under shared
// adapting probabilities.
func TestRangeCoderBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bits := make([]int, 5000)
	for i := range bits {
		// Skewed source to exercise adaptation.
		if rng.Float64() < 0.8 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	enc := getEncoder()
	p := uint16(probInit)
	for _, b := range bits {
		enc.encodeBit(&p, b)
	}
	data := enc.flush()
	// Skewed bits should compress: 5000 bits = 625 bytes raw.
	if len(data) > 550 {
		t.Fatalf("range coder output %d bytes; expected < 550 for skewed source", len(data))
	}
	var dec rcDecoder
	dec.init(data)
	p = probInit
	for i, want := range bits {
		if got := dec.decodeBit(&p); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}
