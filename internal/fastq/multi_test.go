package fastq

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// fq builds FASTQ text for reads named like prefix.N carrying the given
// sequences.
func fq(prefix string, seqs ...string) string {
	var b strings.Builder
	for i, s := range seqs {
		fmt.Fprintf(&b, "@%s.%d\n%s\n+\n%s\n", prefix, i, s, strings.Repeat("I", len(s)))
	}
	return b.String()
}

// pairFq builds R1/R2 FASTQ text with classic /1 and /2 mate suffixes.
func pairFq(prefix string, n int, mate int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		seq := strings.Repeat([]string{"ACGT", "GGCA"}[mate-1], 3)
		fmt.Fprintf(&b, "@%s.%d/%d\n%s\n+\n%s\n", prefix, i, mate, seq, strings.Repeat("F", len(seq)))
	}
	return b.String()
}

func drain(t *testing.T, m *MultiReader) []Batch {
	t.Helper()
	var out []Batch
	for {
		b, err := m.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

// TestMultiReaderFileAware checks batches never span sources: each file
// ends with a short (or full) batch, and the next batch starts the next
// file even when the previous one did not fill up.
func TestMultiReaderFileAware(t *testing.T) {
	m, err := NewMultiReader([]NamedReader{
		{Name: "a.fq", R: strings.NewReader(fq("a", "ACGT", "ACGT", "ACGT", "ACGT", "ACGT"))}, // 5 reads
		{Name: "b.fq", R: strings.NewReader(fq("b", "GGCA", "GGCA", "GGCA"))},                 // 3 reads
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	batches := drain(t, m)
	// a.fq: 2+2+1, b.fq: 2+1 — the 1-read tail batches are the file
	// boundaries.
	wantSizes := []int{2, 2, 1, 2, 1}
	wantSrcs := []int{0, 0, 0, 1, 1}
	if len(batches) != len(wantSizes) {
		t.Fatalf("got %d batches, want %d", len(batches), len(wantSizes))
	}
	for i, b := range batches {
		if b.Index != i || len(b.Records) != wantSizes[i] || b.Source != wantSrcs[i] {
			t.Fatalf("batch %d: index=%d size=%d source=%d, want index=%d size=%d source=%d",
				i, b.Index, len(b.Records), b.Source, i, wantSizes[i], wantSrcs[i])
		}
	}
	if got := m.SourceReads(); got[0] != 5 || got[1] != 3 {
		t.Fatalf("source reads = %v, want [5 3]", got)
	}
	if srcs := m.Sources(); srcs[0].Display() != "a.fq" || srcs[1].Display() != "b.fq" {
		t.Fatalf("sources = %v", srcs)
	}
}

// TestMultiReaderEmptySource checks an empty file contributes no batch
// but still appears in the manifest with zero reads.
func TestMultiReaderEmptySource(t *testing.T) {
	m, err := NewMultiReader([]NamedReader{
		{Name: "empty.fq", R: strings.NewReader("")},
		{Name: "b.fq", R: strings.NewReader(fq("b", "ACGT"))},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	batches := drain(t, m)
	if len(batches) != 1 || batches[0].Source != 1 || batches[0].Index != 0 {
		t.Fatalf("batches = %+v", batches)
	}
	if got := m.SourceReads(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("source reads = %v, want [0 1]", got)
	}
}

// TestPairedInterleave checks R1/R2 records interleave mate by mate and
// whole pairs stay in one batch.
func TestPairedInterleave(t *testing.T) {
	m, err := NewPairedReader([][2]NamedReader{{
		{Name: "r1.fq", R: strings.NewReader(pairFq("p", 5, 1))},
		{Name: "r2.fq", R: strings.NewReader(pairFq("p", 5, 2))},
	}}, 5) // odd size rounds down to 4 = 2 pairs per batch
	if err != nil {
		t.Fatal(err)
	}
	batches := drain(t, m)
	wantSizes := []int{4, 4, 2}
	if len(batches) != len(wantSizes) {
		t.Fatalf("got %d batches, want %d", len(batches), len(wantSizes))
	}
	pair := 0
	for i, b := range batches {
		if len(b.Records) != wantSizes[i] || b.Source != 0 {
			t.Fatalf("batch %d: size=%d source=%d", i, len(b.Records), b.Source)
		}
		for j := 0; j < len(b.Records); j += 2 {
			r1, r2 := b.Records[j], b.Records[j+1]
			if r1.Header != fmt.Sprintf("p.%d/1", pair) || r2.Header != fmt.Sprintf("p.%d/2", pair) {
				t.Fatalf("pair %d interleaved wrong: %q / %q", pair, r1.Header, r2.Header)
			}
			pair++
		}
	}
	if srcs := m.Sources(); srcs[0].Display() != "r1.fq+r2.fq" {
		t.Fatalf("sources = %v", srcs)
	}
	if got := m.SourceReads(); got[0] != 10 {
		t.Fatalf("source reads = %v, want [10]", got)
	}
}

// TestPairedMateMismatch checks disagreeing mate names fail with both
// names in the error.
func TestPairedMateMismatch(t *testing.T) {
	r1 := "@x.0/1\nACGT\n+\nIIII\n@x.1/1\nACGT\n+\nIIII\n"
	r2 := "@x.0/2\nGGCA\n+\nIIII\n@y.1/2\nGGCA\n+\nIIII\n"
	m, err := NewPairedReader([][2]NamedReader{{
		{Name: "r1.fq", R: strings.NewReader(r1)},
		{Name: "r2.fq", R: strings.NewReader(r2)},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Next()
	if err == nil || !strings.Contains(err.Error(), "mate name mismatch") ||
		!strings.Contains(err.Error(), `"x.1/1"`) || !strings.Contains(err.Error(), `"y.1/2"`) {
		t.Fatalf("got %v, want mate name mismatch naming both reads", err)
	}
}

// TestPairedUnequalLength checks an R1/R2 length mismatch is reported
// with the file that ran short.
func TestPairedUnequalLength(t *testing.T) {
	for _, tc := range []struct {
		n1, n2 int
		short  string
	}{
		{2, 3, "r1.fq"},
		{3, 2, "r2.fq"},
	} {
		m, err := NewPairedReader([][2]NamedReader{{
			{Name: "r1.fq", R: strings.NewReader(pairFq("p", tc.n1, 1))},
			{Name: "r2.fq", R: strings.NewReader(pairFq("p", tc.n2, 2))},
		}}, 64)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.Next()
		if err == nil || !strings.Contains(err.Error(), "unequal read counts") ||
			!strings.Contains(err.Error(), tc.short+" ended") {
			t.Fatalf("n1=%d n2=%d: got %v, want unequal-count error naming %s", tc.n1, tc.n2, err, tc.short)
		}
	}
}

// TestPairedParseErrorBeatsEOF checks a real parse error in one mate
// file is reported even when the other file ends cleanly at the same
// pair — an "unequal read counts" message would mask the corruption.
func TestPairedParseErrorBeatsEOF(t *testing.T) {
	r1 := pairFq("p", 1, 1)                                  // 1 clean read, then EOF
	r2 := pairFq("p", 1, 2) + "@p.1/2\nACGT\nbroken\nIIII\n" // malformed 2nd record
	m, err := NewPairedReader([][2]NamedReader{{
		{Name: "r1.fq", R: strings.NewReader(r1)},
		{Name: "r2.fq", R: strings.NewReader(r2)},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Next()
	if err == nil || strings.Contains(err.Error(), "unequal read counts") ||
		!strings.Contains(err.Error(), "r2.fq") {
		t.Fatalf("got %v, want r2.fq parse error, not an unequal-count report", err)
	}
}

// TestPairedScanError checks malformed input is attributed to its file.
func TestPairedScanError(t *testing.T) {
	m, err := NewPairedReader([][2]NamedReader{{
		{Name: "r1.fq", R: strings.NewReader("@a/1\nACGT\n+\nIIII\n")},
		{Name: "r2.fq", R: strings.NewReader("@a/2\nACGT\nbroken\nIIII\n")},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Next()
	if err == nil || !strings.Contains(err.Error(), "r2.fq") {
		t.Fatalf("got %v, want parse error naming r2.fq", err)
	}
}

func TestMultiReaderNoInputs(t *testing.T) {
	if _, err := NewMultiReader(nil, 4); err == nil {
		t.Fatal("NewMultiReader(nil) succeeded")
	}
	if _, err := NewPairedReader(nil, 4); err == nil {
		t.Fatal("NewPairedReader(nil) succeeded")
	}
}

// TestMateKey pins the mate-name normalization: the comment (after the
// first space) is cut first, then a trailing /1 or /2 is stripped.
func TestMateKey(t *testing.T) {
	cases := []struct{ h, want string }{
		{"read7/1", "read7"},
		{"read7/2", "read7"},
		{"read7", "read7"},
		{"read7/3", "read7/3"},
		{"M0:1:AB/1 1:N:0:ATC", "M0:1:AB"},
		{"M0:1:AB 2:N:0:ATC", "M0:1:AB"},
	}
	for _, c := range cases {
		if got := mateKey(c.h); got != c.want {
			t.Fatalf("mateKey(%q) = %q, want %q", c.h, got, c.want)
		}
	}
}
