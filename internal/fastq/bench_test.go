package fastq

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"sage/internal/genome"
)

// benchFastqText synthesizes FASTQ text for the scan benchmarks:
// shard-sized batches of 150-base reads, the shape the compression
// pipeline ingests.
func benchFastqText(reads int) []byte {
	rng := rand.New(rand.NewSource(7))
	rs := &ReadSet{Records: make([]Record, reads)}
	for i := range rs.Records {
		seq := genome.Random(rng, 150)
		qual := make([]byte, len(seq))
		for j := range qual {
			qual[j] = byte(20 + rng.Intn(20))
		}
		rs.Records[i] = Record{Header: "read/" + string(rune('a'+i%26)), Seq: seq, Qual: qual}
	}
	return rs.Bytes()
}

func BenchmarkScannerNext(b *testing.B) {
	text := benchFastqText(2048)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(bytes.NewReader(text))
		for {
			if _, err := sc.Next(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchScan is the hot ingest loop: the arena-backed batch
// reader the parallel compressor feeds from. Allocations per op should
// stay O(batches), not O(reads).
func BenchmarkBatchScan(b *testing.B) {
	text := benchFastqText(2048)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := NewBatchReader(bytes.NewReader(text), 256)
		for {
			if _, err := br.Next(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
	}
}
