package fastq

import (
	"math"
	"testing"

	"sage/internal/genome"
)

func TestAvgPhred(t *testing.T) {
	r := Record{Seq: genome.MustFromString("ACGT"), Qual: []byte{10, 20, 30, 40}}
	avg, ok := r.AvgPhred()
	if !ok || avg != 25 {
		t.Fatalf("AvgPhred = %v, %v; want 25, true", avg, ok)
	}
	unscored := Record{Seq: genome.MustFromString("ACGT")}
	if _, ok := unscored.AvgPhred(); ok {
		t.Fatal("unscored record reported an average Phred")
	}
	empty := Record{}
	if _, ok := empty.AvgPhred(); ok {
		t.Fatal("empty record reported an average Phred")
	}
}

func TestExpectedError(t *testing.T) {
	// Q10 = 0.1, Q20 = 0.01: EE = 0.11.
	r := Record{Seq: genome.MustFromString("AC"), Qual: []byte{10, 20}}
	ee, ok := r.ExpectedError()
	if !ok || math.Abs(ee-0.11) > 1e-12 {
		t.Fatalf("ExpectedError = %v, %v; want 0.11, true", ee, ok)
	}
	// Q0 means certain error: one base, EE = 1.
	worst := Record{Seq: genome.MustFromString("A"), Qual: []byte{0}}
	if ee, ok := worst.ExpectedError(); !ok || ee != 1 {
		t.Fatalf("Q0 ExpectedError = %v, %v; want 1, true", ee, ok)
	}
	unscored := Record{Seq: genome.MustFromString("ACGT")}
	if _, ok := unscored.ExpectedError(); ok {
		t.Fatal("unscored record reported an expected error")
	}
}

func TestGCFraction(t *testing.T) {
	cases := []struct {
		seq  string
		want float64
	}{
		{"GGCC", 1},
		{"AATT", 0},
		{"ACGT", 0.5},
		{"GCNN", 0.5}, // N dilutes like A/T
		{"", 0},
	}
	for _, c := range cases {
		r := Record{Seq: genome.MustFromString(c.seq)}
		if got := r.GCFraction(); got != c.want {
			t.Fatalf("GCFraction(%q) = %v, want %v", c.seq, got, c.want)
		}
	}
}
