package fastq

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

const streamSample = "@r1\nACGT\n+\n!!!!\n@r2\nGGC\n+\n###\n@r3\nTTTA\n+\n!!!!\n@r4\nCC\n+\n!!\n@r5\nAACGT\n+\n!!!!!\n"

func TestScannerMatchesParse(t *testing.T) {
	want, err := Parse(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(streamSample))
	var got ReadSet
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got.Records = append(got.Records, rec)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("scanner yielded %d records, Parse %d", len(got.Records), len(want.Records))
	}
	if !Equivalent(&got, want) {
		t.Fatal("scanner records differ from Parse records")
	}
	for i := range got.Records {
		if got.Records[i].Header != want.Records[i].Header {
			t.Fatalf("record %d: header order differs", i)
		}
	}
}

func TestScannerErrors(t *testing.T) {
	cases := []struct {
		name, in, substr string
	}{
		{"bad header", "xr1\nACGT\n+\n!!!!\n", "expected '@'"},
		{"truncated", "@r1\nACGT\n", "truncated"},
		{"bad separator", "@r1\nACGT\n-\n!!!!\n", "expected '+'"},
		{"qual length", "@r1\nACGT\n+\n!!!\n", "quality chars"},
		{"qual range", "@r1\nACGT\n+\n!! !\n", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := NewScanner(strings.NewReader(c.in))
			_, err := sc.Next()
			if err == nil || !strings.Contains(err.Error(), c.substr) {
				t.Fatalf("got error %v, want substring %q", err, c.substr)
			}
		})
	}
}

func TestBatchReader(t *testing.T) {
	br := NewBatchReader(strings.NewReader(streamSample), 2)
	var sizes []int
	total := 0
	for i := 0; ; i++ {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Index != i {
			t.Fatalf("batch %d has index %d", i, b.Index)
		}
		sizes = append(sizes, len(b.Records))
		total += len(b.Records)
	}
	if total != 5 || len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("got batch sizes %v (total %d), want [2 2 1]", sizes, total)
	}
	// After EOF, Next keeps returning EOF.
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestBatchReaderEmpty(t *testing.T) {
	br := NewBatchReader(strings.NewReader(""), 4)
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("empty input: got %v, want io.EOF", err)
	}
}

func TestBatchReaderMatchesBatches(t *testing.T) {
	rs, err := Parse(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	want := rs.Batches(3)
	br := NewBatchReader(strings.NewReader(streamSample), 3)
	for _, wb := range want {
		gb, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if gb.Index != wb.Index || len(gb.Records) != len(wb.Records) {
			t.Fatalf("batch %d: got %d records, want %d", wb.Index, len(gb.Records), len(wb.Records))
		}
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatal("BatchReader yielded more batches than ReadSet.Batches")
	}
}

// TestScannerBufferBoundaryStability: bufio.Scanner.Bytes views are
// invalidated by the next Scan call, and a FASTQ record needs three
// more Scans after its header line. When a record straddles the
// scanner's buffered window (~every 1 MiB of input), the buffer shifts
// and a held view is silently rewritten — historically this corrupted
// one header per megabyte on large streams. The scanner must therefore
// stabilize the header and sequence lines before scanning on; this test
// pushes several buffer windows of records through both faces of the
// scanner and checks every field.
func TestScannerBufferBoundaryStability(t *testing.T) {
	var in bytes.Buffer
	seq := strings.Repeat("ACGTACGTAC", 20) // 200 bases
	qual := strings.Repeat("IIIIIJJJJJ", 20)
	n := 0
	for in.Len() < 3<<20 {
		fmt.Fprintf(&in, "@read.%07d\n%s\n+\n%s\n", n, seq, qual)
		n++
	}
	input := in.Bytes()

	check := func(t *testing.T, i int, r *Record) {
		t.Helper()
		if want := fmt.Sprintf("read.%07d", i); r.Header != want {
			t.Fatalf("record %d: header %q, want %q", i, r.Header, want)
		}
		if got := r.Seq.String(); got != seq {
			t.Fatalf("record %d: sequence corrupted", i)
		}
		if len(r.Qual) != len(seq) || r.Qual[0] != 'I'-QualityOffset {
			t.Fatalf("record %d: quality corrupted", i)
		}
	}

	t.Run("Scanner", func(t *testing.T) {
		sc := NewScanner(bytes.NewReader(input))
		for i := 0; i < n; i++ {
			rec, err := sc.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			check(t, i, &rec)
		}
		if _, err := sc.Next(); err != io.EOF {
			t.Fatalf("want io.EOF after %d records, got %v", n, err)
		}
	})
	t.Run("BatchReader", func(t *testing.T) {
		br := NewBatchReader(bytes.NewReader(input), 64)
		i := 0
		for {
			b, err := br.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for j := range b.Records {
				check(t, i, &b.Records[j])
				i++
			}
		}
		if i != n {
			t.Fatalf("batched scan yielded %d records, want %d", i, n)
		}
	})
}
