package fastq

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

const sniffFASTQ = "@r1\nACGT\n+\nIIII\n@r2\nTTGG\n+\nFFFF\n"

func gzipBytes(t *testing.T, chunks ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range chunks {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(c)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSniffReaderPlain(t *testing.T) {
	r, err := SniffReader(strings.NewReader(sniffFASTQ))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("plain stream altered:\n%q", got)
	}
}

func TestSniffReaderGzip(t *testing.T) {
	r, err := SniffReader(bytes.NewReader(gzipBytes(t, sniffFASTQ)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("gzip stream decoded wrong:\n%q", got)
	}
}

// Multi-member gzip (bgzip, concatenated lanes) must decode across
// member boundaries, not stop at the first one.
func TestSniffReaderMultiMemberGzip(t *testing.T) {
	half := len(sniffFASTQ) / 2
	data := gzipBytes(t, sniffFASTQ[:half], sniffFASTQ[half:])
	r, err := SniffReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("multi-member gzip decoded wrong:\n%q", got)
	}
}

// Streams too short to hold the magic (empty or one byte) pass through;
// the FASTQ scanner decides what they mean.
func TestSniffReaderShort(t *testing.T) {
	for _, in := range []string{"", "@", "\x1f"} {
		r, err := SniffReader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != in {
			t.Fatalf("%q passed through as %q", in, got)
		}
	}
}

// A corrupt stream that starts with the magic but is not gzip fails at
// sniff time with the gzip error, not downstream with a parse error.
func TestSniffReaderBadGzip(t *testing.T) {
	if _, err := SniffReader(strings.NewReader("\x1f\x8bnot really gzip")); err == nil {
		t.Fatal("bad gzip header accepted")
	}
}

// Gzipped input scans to the same records as its plain-text form.
func TestSniffReaderScansRecords(t *testing.T) {
	r, err := SniffReader(bytes.NewReader(gzipBytes(t, sniffFASTQ)))
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatchReader(r, 16)
	b, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 2 || b.Records[0].Header != "r1" || b.Records[1].Header != "r2" {
		t.Fatalf("scanned records: %+v", b.Records)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
