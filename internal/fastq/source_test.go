package fastq

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"sage/internal/pargz"
)

const sniffFASTQ = "@r1\nACGT\n+\nIIII\n@r2\nTTGG\n+\nFFFF\n"

func gzipBytes(t *testing.T, chunks ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range chunks {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(c)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSniffReaderPlain(t *testing.T) {
	r, err := SniffReader(strings.NewReader(sniffFASTQ))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("plain stream altered:\n%q", got)
	}
}

func TestSniffReaderGzip(t *testing.T) {
	r, err := SniffReader(bytes.NewReader(gzipBytes(t, sniffFASTQ)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("gzip stream decoded wrong:\n%q", got)
	}
}

// Multi-member gzip (bgzip, concatenated lanes) must decode across
// member boundaries, not stop at the first one.
func TestSniffReaderMultiMemberGzip(t *testing.T) {
	half := len(sniffFASTQ) / 2
	data := gzipBytes(t, sniffFASTQ[:half], sniffFASTQ[half:])
	r, err := SniffReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sniffFASTQ {
		t.Fatalf("multi-member gzip decoded wrong:\n%q", got)
	}
}

// Streams too short to hold the magic (empty or one byte) pass through;
// the FASTQ scanner decides what they mean.
func TestSniffReaderShort(t *testing.T) {
	for _, in := range []string{"", "@", "\x1f"} {
		r, err := SniffReader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != in {
			t.Fatalf("%q passed through as %q", in, got)
		}
	}
}

// A corrupt stream that starts with the magic but is not gzip fails at
// sniff time with the gzip error, not downstream with a parse error.
func TestSniffReaderBadGzip(t *testing.T) {
	if _, err := SniffReader(strings.NewReader("\x1f\x8bnot really gzip")); err == nil {
		t.Fatal("bad gzip header accepted")
	}
}

// Sniff routes PGZ1 (gzipc) streams through the parallel decoder too.
func TestSniffPGZ1(t *testing.T) {
	payload := strings.Repeat(sniffFASTQ, 64)
	// Hand-build a minimal PGZ1 stream: magic + total + 1 block.
	var member bytes.Buffer
	zw := gzip.NewWriter(&member)
	zw.Write([]byte(payload))
	zw.Close()
	var in bytes.Buffer
	in.WriteString("PGZ1")
	var tmp [16]byte
	in.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))])
	in.Write(tmp[:binary.PutUvarint(tmp[:], 1)])
	in.Write(tmp[:binary.PutUvarint(tmp[:], uint64(member.Len()))])
	in.Write(member.Bytes())

	r, err := Sniff(bytes.NewReader(in.Bytes()), SniffOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseSniffed(r)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("PGZ1 stream decoded wrong: %d bytes, want %d", len(got), len(payload))
	}
}

// A truncated gzip input surfaces through the scanning pipeline as a
// contextual error naming the input file and a compressed offset —
// never a silent short read ending in a clean EOF. The fixture is
// BGZF with record-aligned blocks, so the bytes decoded before the
// damage parse cleanly and the decode error itself reaches the
// scanner through the member-parallel path.
func TestSniffTruncatedGzipSurfacesThroughScanner(t *testing.T) {
	payload := strings.Repeat(sniffFASTQ, 2048)
	var full bytes.Buffer
	w, err := pargz.NewWriterLevel(&full, gzip.DefaultCompression, 64*len(sniffFASTQ))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	members, err := pargz.SplitMembers(full.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(members[0]) + len(members[1]) + len(members[2])/2
	r, err := Sniff(bytes.NewReader(full.Bytes()[:cut]), SniffOptions{Name: "lane1.fq.gz"})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseSniffed(r)
	br := NewBatchReader(r, 64)
	for {
		_, err = br.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("truncated gzip ingest ended in a clean EOF — silent short read")
	}
	for _, want := range []string{"lane1.fq.gz", "offset"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("scanner error %q does not mention %q", err, want)
		}
	}
}

// The same contract for a generic single-member gzip cut at an
// arbitrary byte: the decoded prefix ends mid-record, and the decode
// error (file + offset) must win over the scanner's own
// truncated-record guess.
func TestSniffTruncatedGzipMidRecord(t *testing.T) {
	payload := strings.Repeat(sniffFASTQ, 2048)
	full := gzipBytes(t, payload)
	r, err := Sniff(bytes.NewReader(full[:len(full)/2]), SniffOptions{Name: "lane2.fq.gz"})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseSniffed(r)
	br := NewBatchReader(r, 64)
	for {
		_, err = br.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("truncated gzip ingest ended in a clean EOF — silent short read")
	}
	for _, want := range []string{"lane2.fq.gz", "offset"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("scanner error %q does not mention %q", err, want)
		}
	}
}

// Gzipped input scans to the same records as its plain-text form.
func TestSniffReaderScansRecords(t *testing.T) {
	r, err := SniffReader(bytes.NewReader(gzipBytes(t, sniffFASTQ)))
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatchReader(r, 16)
	b, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 2 || b.Records[0].Header != "r1" || b.Records[1].Header != "r2" {
		t.Fatalf("scanned records: %+v", b.Records)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
