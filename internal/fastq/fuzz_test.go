package fastq

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzScanner throws arbitrary bytes at the two FASTQ reading paths and
// checks they agree: the record-at-a-time Scanner (each record owns its
// memory) and the arena-backed BatchReader (records share slabs). Both
// sit on nextRaw, but their allocation and header-materialization code
// differs, which is exactly where a zero-copy refactor would corrupt
// data. Accepted inputs must also survive a serialize/reparse
// roundtrip.
func FuzzScanner(f *testing.F) {
	f.Add([]byte(streamSample))
	f.Add([]byte("@r1\r\nACGT\r\n+\r\n!!!!\r\n")) // CRLF line endings
	f.Add([]byte("@r1\nACGT\n+\n\n"))             // blank quality under bases: truncation guard
	f.Add([]byte("@r1\nACGT\n"))                  // truncated record
	f.Add([]byte("xr1\nACGT\n+\n!!!!\n"))         // missing '@'
	f.Add([]byte("@r1\nACGT\n+\n!! !\n"))         // quality char out of range
	f.Add([]byte("@r1\nAXGT\n+\n!!!!\n"))         // invalid base
	f.Add([]byte("@h\n\n+\n\n@i\nA\n+\n!\n"))     // empty read then normal read
	f.Add([]byte("\n\n@r1\nACGT\n+\n!!!!\n\n\n")) // blank lines between records
	long := strings.Repeat("ACGT", 20<<10)        // one 80 KiB line (> bufio default buffer)
	f.Add([]byte("@big\n" + long + "\n+\n" + strings.Repeat("#", len(long)) + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		var recs []Record
		var scanErr error
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				scanErr = err
				break
			}
			recs = append(recs, rec)
		}

		br := NewBatchReader(bytes.NewReader(data), 3)
		var brecs []Record
		var batchErr error
		for {
			b, err := br.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				batchErr = err
				break
			}
			brecs = append(brecs, b.Records...)
		}

		if (scanErr == nil) != (batchErr == nil) {
			t.Fatalf("scanner error %v but batch reader error %v", scanErr, batchErr)
		}
		if scanErr == nil && len(brecs) != len(recs) {
			t.Fatalf("scanner yielded %d records, batch reader %d", len(recs), len(brecs))
		}
		// On an error the batch reader legitimately drops the partial
		// batch preceding it, so only its emitted prefix is compared.
		if len(brecs) > len(recs) {
			t.Fatalf("batch reader yielded %d records past the scanner's %d", len(brecs), len(recs))
		}
		for i := range brecs {
			a, b := &recs[i], &brecs[i]
			if a.Header != b.Header {
				t.Fatalf("record %d: header %q vs %q", i, a.Header, b.Header)
			}
			if !bytes.Equal(a.Seq, b.Seq) {
				t.Fatalf("record %d: sequences differ", i)
			}
			if !bytes.Equal(a.Qual, b.Qual) {
				t.Fatalf("record %d: qualities differ", i)
			}
		}
		if scanErr != nil {
			return
		}

		// Accepted input roundtrips: Write then Parse reproduces the
		// records exactly (CRLF normalizes to LF on the way through).
		rs := &ReadSet{Records: recs}
		re, err := Parse(bytes.NewReader(rs.Bytes()))
		if err != nil {
			t.Fatalf("reparse of serialized records: %v", err)
		}
		if len(re.Records) != len(recs) {
			t.Fatalf("roundtrip yielded %d records, want %d", len(re.Records), len(recs))
		}
		for i := range recs {
			a, b := &recs[i], &re.Records[i]
			if a.Header != b.Header || !bytes.Equal(a.Seq, b.Seq) || !bytes.Equal(a.Qual, b.Qual) {
				t.Fatalf("record %d changed across write/parse roundtrip", i)
			}
		}
	})
}
