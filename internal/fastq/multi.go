package fastq

import (
	"bytes"
	"fmt"
	"io"
)

// Real sequencing runs arrive as many FASTQ files — paired-end mates
// (R1/R2) and lane splits — not one stream. MultiReader is the ingest
// front end for that workload: it batches records across N input
// sources while keeping every batch inside a single source, so a
// downstream sharded container can stay file-aware (no shard spans two
// source files). In paired mode each R1/R2 mate pair is one logical
// source: records are interleaved mate by mate and the mate names are
// validated as they stream.

// NamedReader couples an input stream with the name it is reported and
// recorded (in the container's source manifest) under.
type NamedReader struct {
	Name string
	R    io.Reader
}

// Source describes one logical ingest source: a single FASTQ file, or —
// in paired mode — an R1/R2 mate pair whose records are interleaved.
type Source struct {
	// Name is the file name (the R1 file in paired mode).
	Name string
	// Mate is the R2 file name; empty for single-file sources.
	Mate string
}

// Display renders the source for humans: "name" or "name+mate".
func (s Source) Display() string {
	if s.Mate == "" {
		return s.Name
	}
	return s.Name + "+" + s.Mate
}

// multiSource is one source and its open scanner(s).
type multiSource struct {
	src   Source
	r1    *Scanner
	r2    *Scanner // nil unless paired
	pairs int      // mate pairs consumed (paired mode, for error context)
}

// MultiReader streams fixed-size batches across many FASTQ sources.
// Batches carry the index of the source they came from, and no batch
// ever spans two sources: when a source runs out mid-batch the batch is
// cut short and the next batch starts the next source. Like
// BatchReader, only one batch of raw reads is materialized per Next
// call.
type MultiReader struct {
	srcs   []multiSource
	bb     batchBuilder
	size   int
	cur    int
	next   int // global batch index
	counts []int
	done   bool
}

// NewMultiReader builds a reader that concatenates the inputs in order
// (lane splits), batching at most size records at a time (size <= 0
// means batches of 1).
func NewMultiReader(inputs []NamedReader, size int) (*MultiReader, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("fastq: multi-reader needs at least one input")
	}
	if size <= 0 {
		size = 1
	}
	m := &MultiReader{size: size, counts: make([]int, len(inputs))}
	for _, in := range inputs {
		m.srcs = append(m.srcs, multiSource{
			src: Source{Name: in.Name},
			r1:  NewScanner(in.R),
		})
	}
	return m, nil
}

// NewPairedReader builds a reader over R1/R2 mate pairs. Each pair is
// one source whose records are interleaved R1[0], R2[0], R1[1], R2[1],
// …; mate headers must agree (same name up to a trailing /1 vs /2 and
// anything after the first space) and both files must hold the same
// number of reads. Batches hold whole mate pairs, so size is rounded
// down to an even count (minimum 2) and mates always land in the same
// batch — and therefore in the same shard downstream.
func NewPairedReader(pairs [][2]NamedReader, size int) (*MultiReader, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("fastq: paired reader needs at least one R1/R2 pair")
	}
	size -= size % 2
	if size < 2 {
		size = 2
	}
	m := &MultiReader{size: size, counts: make([]int, len(pairs))}
	for _, p := range pairs {
		m.srcs = append(m.srcs, multiSource{
			src: Source{Name: p[0].Name, Mate: p[1].Name},
			r1:  NewScanner(p[0].R),
			r2:  NewScanner(p[1].R),
		})
	}
	return m, nil
}

// BatchSize returns the reader's effective batch size: the size it was
// built with, rounded down to an even count in paired mode. This is
// the shard cut point a downstream CompressSources records.
func (m *MultiReader) BatchSize() int { return m.size }

// Sources lists the reader's sources in ingest order. Batch.Source
// indexes into this slice.
func (m *MultiReader) Sources() []Source {
	out := make([]Source, len(m.srcs))
	for i := range m.srcs {
		out[i] = m.srcs[i].src
	}
	return out
}

// SourceReads returns the records consumed from each source so far;
// once Next has returned io.EOF these are the per-source totals.
func (m *MultiReader) SourceReads() []int {
	return append([]int(nil), m.counts...)
}

// Next returns the next batch, tagged with its source. It returns
// io.EOF once every source is exhausted; empty sources are skipped
// without emitting a batch.
func (m *MultiReader) Next() (Batch, error) {
	for !m.done {
		s := &m.srcs[m.cur]
		var (
			recs []Record
			err  error
		)
		if s.r2 != nil {
			recs, err = m.fillPaired(s)
		} else {
			recs, err = m.fillSingle(s)
		}
		if err != nil {
			return Batch{}, err
		}
		exhausted := len(recs) < m.size
		m.counts[m.cur] += len(recs)
		b := Batch{Index: m.next, Source: m.cur, Records: recs}
		if exhausted {
			if m.cur++; m.cur == len(m.srcs) {
				m.done = true
			}
		}
		if len(recs) == 0 {
			continue // empty source: move on without a batch
		}
		m.next++
		return b, nil
	}
	return Batch{}, io.EOF
}

// fillSingle reads up to size records from a single-file source into
// the reader's batch builder.
func (m *MultiReader) fillSingle(s *multiSource) ([]Record, error) {
	m.bb.start(m.size)
	var rr rawRecord
	for len(m.bb.recs) < m.size {
		err := s.r1.nextRaw(&rr)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fastq: file %s: %w", s.src.Name, err)
		}
		m.bb.add(&rr)
	}
	return m.bb.finish(), nil
}

// fillPaired reads up to size records (size/2 mate pairs) from a paired
// source, validating mate agreement pair by pair. The two scanners have
// independent buffers, so both raw views stay valid while a pair is
// checked and converted.
func (m *MultiReader) fillPaired(s *multiSource) ([]Record, error) {
	m.bb.start(m.size)
	var rr1, rr2 rawRecord
	for len(m.bb.recs) < m.size {
		err1 := s.r1.nextRaw(&rr1)
		err2 := s.r2.nextRaw(&rr2)
		// A real parse error outranks the other file's clean EOF: an
		// "unequal read counts" report would mask the corruption.
		if err1 != nil && err1 != io.EOF {
			return nil, fmt.Errorf("fastq: file %s: %w", s.src.Name, err1)
		}
		if err2 != nil && err2 != io.EOF {
			return nil, fmt.Errorf("fastq: file %s: %w", s.src.Mate, err2)
		}
		if err1 == io.EOF && err2 == io.EOF {
			break
		}
		if err1 == io.EOF || err2 == io.EOF {
			short, long := s.src.Name, s.src.Mate
			if err2 == io.EOF {
				short, long = s.src.Mate, s.src.Name
			}
			return nil, fmt.Errorf("fastq: paired inputs have unequal read counts: %s ended after %d reads while %s has more",
				short, s.pairs, long)
		}
		if !bytes.Equal(mateKeyBytes(rr1.header), mateKeyBytes(rr2.header)) {
			return nil, fmt.Errorf("fastq: mate name mismatch at pair %d of %s/%s: %q vs %q",
				s.pairs, s.src.Name, s.src.Mate, rr1.header, rr2.header)
		}
		s.pairs++
		m.bb.add(&rr1)
		m.bb.add(&rr2)
	}
	return m.bb.finish(), nil
}

// mateKeyBytes reduces a read header to the name both mates of a pair
// must share: the part before the first space (Casava 1.8+ keeps the
// mate number in the comment), with a classic trailing "/1" or "/2"
// mate suffix stripped.
func mateKeyBytes(h []byte) []byte {
	if i := bytes.IndexByte(h, ' '); i >= 0 {
		h = h[:i]
	}
	if n := len(h); n >= 2 && h[n-2] == '/' && (h[n-1] == '1' || h[n-1] == '2') {
		h = h[:n-2]
	}
	return h
}

// mateKey is mateKeyBytes for string headers.
func mateKey(h string) string { return string(mateKeyBytes([]byte(h))) }
