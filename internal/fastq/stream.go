package fastq

import (
	"bufio"
	"fmt"
	"io"

	"sage/internal/genome"
)

// Scanner reads FASTQ records one at a time from a stream, so callers can
// batch and pipeline reads without materializing the whole file (§3.1:
// I/O, decompression and analysis operate on batches in a pipelined
// manner). Parse is a thin loop over Scanner.
type Scanner struct {
	sc   *bufio.Scanner
	line int
}

// NewScanner wraps r in a record-at-a-time FASTQ reader.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &Scanner{sc: sc}
}

// Line returns the number of input lines consumed so far.
func (s *Scanner) Line() int { return s.line }

// Next returns the next record. It returns io.EOF once the input is
// exhausted, and a descriptive error (with a line number) on malformed
// input.
func (s *Scanner) Next() (Record, error) {
	var h string
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
		s.line++
		h = s.sc.Text()
		if len(h) != 0 {
			break
		}
	}
	if h[0] != '@' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '@', got %q", s.line, h)
	}
	if !s.sc.Scan() {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record (no sequence)", s.line)
	}
	s.line++
	seq, err := genome.FromString(s.sc.Text())
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: %w", s.line, err)
	}
	if !s.sc.Scan() {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record (no separator)", s.line)
	}
	s.line++
	if sep := s.sc.Text(); len(sep) == 0 || sep[0] != '+' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '+', got %q", s.line, sep)
	}
	if !s.sc.Scan() {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record (no quality)", s.line)
	}
	s.line++
	qline := s.sc.Bytes()
	var qual []byte
	if len(qline) == 0 && len(seq) > 0 {
		// A present-but-empty quality line under a non-empty sequence is
		// how a file truncated mid-record (or corrupted in transit) most
		// often reads. Accepting it silently would turn scored reads into
		// unscored ones and poison every downstream quality statistic, so
		// it is an error; genuinely unscored reads belong in FASTA or in
		// Record structs with a nil Qual, not in FASTQ text.
		return Record{}, fmt.Errorf("fastq: line %d: empty quality line for a %d-base read (truncated input?)", s.line, len(seq))
	}
	if len(qline) > 0 {
		if len(qline) != len(seq) {
			return Record{}, fmt.Errorf("fastq: line %d: %d quality chars for %d bases", s.line, len(qline), len(seq))
		}
		qual = make([]byte, len(qline))
		for i, c := range qline {
			if c < QualityOffset || c-QualityOffset > MaxQuality {
				return Record{}, fmt.Errorf("fastq: line %d: quality char %q out of range", s.line, c)
			}
			qual[i] = c - QualityOffset
		}
	}
	return Record{Header: h[1:], Seq: seq, Qual: qual}, nil
}

// BatchReader groups a Scanner's records into fixed-size Batches: the
// shard-sized work units of the parallel compression pipeline. Only one
// batch of raw reads is held in memory per Next call, so arbitrarily
// large FASTQ files stream through a bounded footprint.
type BatchReader struct {
	s    *Scanner
	size int
	next int
	done bool
}

// NewBatchReader reads FASTQ from r in batches of at most size records
// (size <= 0 means batches of 1).
func NewBatchReader(r io.Reader, size int) *BatchReader {
	if size <= 0 {
		size = 1
	}
	return &BatchReader{s: NewScanner(r), size: size}
}

// Next returns the next batch. It returns io.EOF once no records remain
// (an empty input yields io.EOF immediately).
func (b *BatchReader) Next() (Batch, error) {
	if b.done {
		return Batch{}, io.EOF
	}
	recs := make([]Record, 0, b.size)
	for len(recs) < b.size {
		rec, err := b.s.Next()
		if err == io.EOF {
			b.done = true
			if len(recs) == 0 {
				return Batch{}, io.EOF
			}
			break
		}
		if err != nil {
			return Batch{}, err
		}
		recs = append(recs, rec)
	}
	batch := Batch{Index: b.next, Records: recs}
	b.next++
	return batch, nil
}
