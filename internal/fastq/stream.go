package fastq

import (
	"bufio"
	"fmt"
	"io"

	"sage/internal/genome"
)

// Scanner reads FASTQ records one at a time from a stream, so callers can
// batch and pipeline reads without materializing the whole file (§3.1:
// I/O, decompression and analysis operate on batches in a pipelined
// manner). Parse is a thin loop over Scanner.
//
// The scanner has two faces. Next returns self-contained Records (each
// owning its memory). The unexported nextRaw returns zero-copy views into
// the scanner's line buffer — valid only until the following nextRaw
// call — which BatchReader and MultiReader convert into arena-backed
// records, so the per-record allocation cost of the scan loop is
// amortized across a whole batch.
type Scanner struct {
	sc   *bufio.Scanner
	line int
	// hbuf and sbuf stabilize the header and sequence lines of the
	// record being scanned: bufio.Scanner.Bytes views are invalidated by
	// the NEXT Scan call, and a record needs three more Scans after its
	// header line (the buffer shifts whenever a record straddles the
	// scanner's buffered window, silently rewriting any held view — a
	// corruption that only surfaces past the first ~1 MiB of a stream).
	// The quality line needs no copy: it is the record's last Scan.
	// Both buffers are reused across records, so the scan loop stays
	// allocation-free once they reach steady state.
	hbuf []byte
	sbuf []byte
}

// rawRecord is a fully validated record whose fields alias the scanner's
// internal buffer: header (without '@') and the ASCII sequence and
// quality lines. Views are invalidated by the next nextRaw call. qual is
// nil when the record carries no quality line content.
type rawRecord struct {
	header []byte
	seq    []byte
	qual   []byte
}

// NewScanner wraps r in a record-at-a-time FASTQ reader.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &Scanner{sc: sc}
}

// Line returns the number of input lines consumed so far.
func (s *Scanner) Line() int { return s.line }

// nextRaw scans and validates the next record without allocating. On
// success rr's fields view the scanner's buffer; every base and quality
// character has been validated, so conversion to a Record cannot fail.
// It returns io.EOF once the input is exhausted, and a descriptive error
// (with a line number) on malformed input.
func (s *Scanner) nextRaw(rr *rawRecord) error {
	var h []byte
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return err
			}
			return io.EOF
		}
		s.line++
		h = s.sc.Bytes()
		if len(h) != 0 {
			break
		}
	}
	if h[0] != '@' {
		return s.scanErr(fmt.Errorf("fastq: line %d: expected '@', got %q", s.line, h))
	}
	s.hbuf = append(s.hbuf[:0], h[1:]...)
	rr.header = s.hbuf
	if !s.sc.Scan() {
		return s.scanErr(fmt.Errorf("fastq: line %d: truncated record (no sequence)", s.line))
	}
	s.line++
	seq := s.sc.Bytes()
	for i := 0; i < len(seq); i++ {
		if _, ok := genome.CharToBase(seq[i]); !ok {
			return s.scanErr(fmt.Errorf("fastq: line %d: genome: invalid base %q at %d", s.line, seq[i], i))
		}
	}
	s.sbuf = append(s.sbuf[:0], seq...)
	rr.seq = s.sbuf
	if !s.sc.Scan() {
		return s.scanErr(fmt.Errorf("fastq: line %d: truncated record (no separator)", s.line))
	}
	s.line++
	if sep := s.sc.Bytes(); len(sep) == 0 || sep[0] != '+' {
		return s.scanErr(fmt.Errorf("fastq: line %d: expected '+', got %q", s.line, sep))
	}
	if !s.sc.Scan() {
		return s.scanErr(fmt.Errorf("fastq: line %d: truncated record (no quality)", s.line))
	}
	s.line++
	qline := s.sc.Bytes()
	rr.qual = nil
	if len(qline) == 0 && len(seq) > 0 {
		// A present-but-empty quality line under a non-empty sequence is
		// how a file truncated mid-record (or corrupted in transit) most
		// often reads. Accepting it silently would turn scored reads into
		// unscored ones and poison every downstream quality statistic, so
		// it is an error; genuinely unscored reads belong in FASTA or in
		// Record structs with a nil Qual, not in FASTQ text.
		return s.scanErr(fmt.Errorf("fastq: line %d: empty quality line for a %d-base read (truncated input?)", s.line, len(seq)))
	}
	if len(qline) > 0 {
		if len(qline) != len(seq) {
			return s.scanErr(fmt.Errorf("fastq: line %d: %d quality chars for %d bases", s.line, len(qline), len(seq)))
		}
		for _, c := range qline {
			if c < QualityOffset || c-QualityOffset > MaxQuality {
				return s.scanErr(fmt.Errorf("fastq: line %d: quality char %q out of range", s.line, c))
			}
		}
		rr.qual = qline
	}
	return nil
}

// scanErr prefers the underlying reader's error over a scan-level one.
// When a decode stage fails mid-stream (a truncated or corrupt gzip
// member), bufio.Scanner still serves the lines buffered before the
// failure — the final window ends in arbitrarily cut text, and a
// message about that text ("3 quality chars for 4 bases") would mask
// the real failure and its file-and-offset context. bufio.Scanner
// records the read error the moment Read returns it, so it is already
// visible here even while buffered lines are still being served.
func (s *Scanner) scanErr(scan error) error {
	if err := s.sc.Err(); err != nil {
		return err
	}
	return scan
}

// convertInto decodes a validated rawRecord's sequence and quality into
// buf, which must have capacity for len(seq)+len(qual) bytes. It returns
// the base codes and Phred scores as sub-slices of buf.
func convertInto(buf []byte, rr *rawRecord) (genome.Seq, []byte) {
	buf = buf[:len(rr.seq)+len(rr.qual)]
	for i, c := range rr.seq {
		b, _ := genome.CharToBase(c)
		buf[i] = b
	}
	seq := genome.Seq(buf[:len(rr.seq):len(rr.seq)])
	var qual []byte
	if rr.qual != nil {
		qual = buf[len(rr.seq):]
		for i, c := range rr.qual {
			qual[i] = c - QualityOffset
		}
	}
	return seq, qual
}

// Next returns the next record. It returns io.EOF once the input is
// exhausted, and a descriptive error (with a line number) on malformed
// input. The record owns its memory: its sequence and quality share one
// backing allocation, and its header is a fresh string.
func (s *Scanner) Next() (Record, error) {
	var rr rawRecord
	if err := s.nextRaw(&rr); err != nil {
		return Record{}, err
	}
	seq, qual := convertInto(make([]byte, len(rr.seq)+len(rr.qual)), &rr)
	return Record{Header: string(rr.header), Seq: seq, Qual: qual}, nil
}

// arenaSlabBytes is the slab size batch arenas carve record buffers out
// of: large enough that a typical shard-sized batch of short reads costs
// a handful of slab allocations, small enough that a retained record
// does not pin an outsized slab.
const arenaSlabBytes = 256 << 10

// arena carves exact-size byte buffers out of shared slabs, so a batch
// of records costs O(slabs) allocations instead of O(records). Buffers
// are capacity-clipped: appending past a buffer's end reallocates rather
// than overrunning a neighbor.
type arena struct {
	slab []byte
}

func (a *arena) take(n int) []byte {
	if len(a.slab) < n {
		sz := arenaSlabBytes
		if sz < n {
			sz = n
		}
		a.slab = make([]byte, sz)
	}
	b := a.slab[:n:n]
	a.slab = a.slab[n:]
	return b
}

// batchBuilder accumulates one batch's records with shared backing
// memory: sequence and quality bytes come from an arena, and all header
// strings of a batch sub-slice one string allocation. The builder's
// scratch (header buffer, offsets) is reused across batches; the arena
// and record slices are not, because the emitted batch owns them.
//
// Ownership rule (see docs/FORMAT.md "Buffer ownership"): records built
// here share backing arrays with their batch siblings. Treat Seq, Qual,
// and Header as immutable, and expect one retained record to keep its
// batch's slab reachable.
type batchBuilder struct {
	recs  []Record
	ar    arena
	hbuf  []byte
	hoffs []int
}

// start begins a new batch of at most n records.
func (bb *batchBuilder) start(n int) {
	bb.recs = make([]Record, 0, n)
	bb.hbuf = bb.hbuf[:0]
	bb.hoffs = bb.hoffs[:0]
}

// add converts a validated rawRecord into the batch.
func (bb *batchBuilder) add(rr *rawRecord) {
	bb.hoffs = append(bb.hoffs, len(bb.hbuf))
	bb.hbuf = append(bb.hbuf, rr.header...)
	seq, qual := convertInto(bb.ar.take(len(rr.seq)+len(rr.qual)), rr)
	bb.recs = append(bb.recs, Record{Seq: seq, Qual: qual})
}

// finish materializes the batch's headers (one string allocation shared
// by every record) and returns the records.
func (bb *batchBuilder) finish() []Record {
	hs := string(bb.hbuf)
	for i := range bb.recs {
		end := len(hs)
		if i+1 < len(bb.hoffs) {
			end = bb.hoffs[i+1]
		}
		bb.recs[i].Header = hs[bb.hoffs[i]:end]
	}
	recs := bb.recs
	bb.recs = nil
	return recs
}

// BatchReader groups a Scanner's records into fixed-size Batches: the
// shard-sized work units of the parallel compression pipeline. Only one
// batch of raw reads is held in memory per Next call, so arbitrarily
// large FASTQ files stream through a bounded footprint. Records within a
// batch share arena-backed memory (see batchBuilder); treat their fields
// as immutable.
type BatchReader struct {
	s    *Scanner
	bb   batchBuilder
	size int
	next int
	done bool
}

// NewBatchReader reads FASTQ from r in batches of at most size records
// (size <= 0 means batches of 1).
func NewBatchReader(r io.Reader, size int) *BatchReader {
	if size <= 0 {
		size = 1
	}
	return &BatchReader{s: NewScanner(r), size: size}
}

// Next returns the next batch. It returns io.EOF once no records remain
// (an empty input yields io.EOF immediately).
func (b *BatchReader) Next() (Batch, error) {
	if b.done {
		return Batch{}, io.EOF
	}
	b.bb.start(b.size)
	var rr rawRecord
	for len(b.bb.recs) < b.size {
		err := b.s.nextRaw(&rr)
		if err == io.EOF {
			b.done = true
			if len(b.bb.recs) == 0 {
				return Batch{}, io.EOF
			}
			break
		}
		if err != nil {
			return Batch{}, err
		}
		b.bb.add(&rr)
	}
	batch := Batch{Index: b.next, Records: b.bb.finish()}
	b.next++
	return batch, nil
}
