package fastq

import (
	"bufio"
	"io"

	"sage/internal/obs"
	"sage/internal/pargz"
)

// The ingest side of compression is a staged pipeline: a BatchSource
// produces batches, optional stages (internal/reorder) transform the
// stream, and the sharder consumes it. Today's streaming writers are
// the identity pipeline — a BatchReader or MultiReader feeding the
// sharder directly — so the refactor costs nothing on the wire:
// identical sources produce identical containers.

// BatchSource is one stage of the ingest pipeline: anything that yields
// record batches in a defined order, ending with io.EOF. BatchReader
// and MultiReader are the leaf sources; pipeline stages wrap another
// BatchSource. Implementations may additionally expose
//
//	Sources() []Source
//
// (file attribution for the container's source manifest, see
// MultiReader.Sources); downstream consumers discover the capability by
// type assertion, so a plain stream stays manifest-less.
type BatchSource interface {
	// Next returns the next batch, or io.EOF after the last one.
	Next() (Batch, error)
}

var (
	_ BatchSource = (*BatchReader)(nil)
	_ BatchSource = (*MultiReader)(nil)
)

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// pgz1Magic is gzipc's parallel-gzip container magic.
var pgz1Magic = [4]byte{'P', 'G', 'Z', '1'}

// SniffOptions tunes Sniff's compressed-input handling; the zero value
// matches the historical SniffReader behavior with pargz acceleration.
type SniffOptions struct {
	// Name labels decode errors with the input's name (usually a path).
	Name string
	// Threads bounds parallel member decode (0 = GOMAXPROCS), plumbed
	// from the CLI's -threads.
	Threads int
	// Metrics and Trace, when non-nil, instrument the decode stage
	// (decoded-byte counters, readahead-stall histogram, gunzip spans).
	Metrics *pargz.Metrics
	Trace   *obs.Trace
}

// Sniff adapts an input stream for FASTQ scanning, transparently
// decompressing compressed inputs: the first bytes are sniffed (never
// consumed from the caller's view) and a stream starting with the gzip
// or PGZ1 magic decodes through internal/pargz — BGZF/bgzip and PGZ1
// inputs inflate member-parallel on Threads workers, generic gzip
// decodes on a pipelined readahead goroutine, so ingest never
// serializes behind a single-threaded inflate. Anything else
// (including an empty stream) passes through buffered but otherwise
// untouched, so plain-text FASTQ pays only a bufio layer it would get
// from the scanner anyway.
//
// When the returned reader is a decompressor it is also an
// io.ReadCloser; callers abandoning the stream early should Close it
// (CloseSniffed does so safely for any sniffed reader).
func Sniff(r io.Reader, opt SniffOptions) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	head, err := br.Peek(4)
	if err != nil && len(head) < 2 {
		// A stream shorter than the magic cannot be gzip; the scanner
		// will report truncation (or clean EOF) on its own terms.
		return br, nil
	}
	gz := head[0] == gzipMagic[0] && head[1] == gzipMagic[1]
	pgz := len(head) >= 4 && [4]byte(head[:4]) == pgz1Magic
	if !gz && !pgz {
		return br, nil
	}
	zr, err := pargz.NewReader(br, pargz.Options{
		Name:    opt.Name,
		Workers: opt.Threads,
		Metrics: opt.Metrics,
		Trace:   opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	return zr, nil
}

// SniffReader is Sniff with default options, kept for call sites that
// need no instrumentation.
func SniffReader(r io.Reader) (io.Reader, error) {
	return Sniff(r, SniffOptions{})
}

// CloseSniffed releases the decode goroutines behind a reader returned
// by Sniff, if any. Safe on plain (non-compressed) sniffed readers.
func CloseSniffed(r io.Reader) {
	if c, ok := r.(io.Closer); ok {
		c.Close()
	}
}
