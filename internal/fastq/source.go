package fastq

import (
	"bufio"
	"compress/gzip"
	"io"
)

// The ingest side of compression is a staged pipeline: a BatchSource
// produces batches, optional stages (internal/reorder) transform the
// stream, and the sharder consumes it. Today's streaming writers are
// the identity pipeline — a BatchReader or MultiReader feeding the
// sharder directly — so the refactor costs nothing on the wire:
// identical sources produce identical containers.

// BatchSource is one stage of the ingest pipeline: anything that yields
// record batches in a defined order, ending with io.EOF. BatchReader
// and MultiReader are the leaf sources; pipeline stages wrap another
// BatchSource. Implementations may additionally expose
//
//	Sources() []Source
//
// (file attribution for the container's source manifest, see
// MultiReader.Sources); downstream consumers discover the capability by
// type assertion, so a plain stream stays manifest-less.
type BatchSource interface {
	// Next returns the next batch, or io.EOF after the last one.
	Next() (Batch, error)
}

var (
	_ BatchSource = (*BatchReader)(nil)
	_ BatchSource = (*MultiReader)(nil)
)

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// SniffReader adapts an input stream for FASTQ scanning, transparently
// decompressing gzip: the first two bytes are sniffed (never consumed
// from the caller's view) and a stream starting with the gzip magic is
// wrapped in a stdlib gzip reader — multi-member files, as produced by
// bgzip and lane concatenation, decode across member boundaries.
// Anything else (including an empty stream) passes through buffered but
// otherwise untouched, so plain-text FASTQ pays only a bufio layer it
// would get from the scanner anyway.
func SniffReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		// A stream shorter than the magic cannot be gzip; the scanner
		// will report truncation (or clean EOF) on its own terms.
		return br, nil
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, err
	}
	return zr, nil
}
