package fastq

import (
	"math"

	"sage/internal/genome"
)

// Per-record quality and composition metrics. These feed the zone-map
// summary statistics internal/shard computes at compress time (format
// v4) and the record-level predicate evaluation of query push-down: the
// same definitions must hold on both sides, or a pruned shard could
// have contained a matching read. The metric suite follows the
// FASTQ-filtering conventions popularized by phredsort: mean Phred is
// the arithmetic mean of the scores, and the expected error is the sum
// of per-base error probabilities 10^(-q/10).

// errProb[q] is the error probability of Phred score q.
var errProb [MaxQuality + 1]float64

func init() {
	for q := range errProb {
		errProb[q] = math.Pow(10, -float64(q)/10)
	}
}

// AvgPhred returns the arithmetic mean Phred score of the record. The
// second result is false for unscored records (nil Qual, §5.1.5:
// qualities are optional) and for empty reads, which carry no scores to
// average; such records never satisfy a quality predicate.
func (r *Record) AvgPhred() (float64, bool) {
	if r.Qual == nil || len(r.Seq) == 0 || len(r.Qual) == 0 {
		return 0, false
	}
	sum := 0
	for _, q := range r.Qual {
		sum += int(q)
	}
	return float64(sum) / float64(len(r.Qual)), true
}

// ExpectedError returns the read's expected number of base-call errors,
// the sum of 10^(-q/10) over its Phred scores. The second result is
// false for unscored or empty reads, mirroring AvgPhred.
func (r *Record) ExpectedError() (float64, bool) {
	if r.Qual == nil || len(r.Seq) == 0 || len(r.Qual) == 0 {
		return 0, false
	}
	ee := 0.0
	for _, q := range r.Qual {
		if int(q) < len(errProb) {
			ee += errProb[q]
		} else {
			ee += math.Pow(10, -float64(q)/10)
		}
	}
	return ee, true
}

// GCFraction returns the fraction of the read's bases that are G or C,
// counting every base (N and any non-ACGT code dilute the fraction the
// same way an A or T does). Reads with no bases report 0.
func (r *Record) GCFraction() float64 {
	if len(r.Seq) == 0 {
		return 0
	}
	gc := 0
	for _, b := range r.Seq {
		if b == genome.BaseC || b == genome.BaseG {
			gc++
		}
	}
	return float64(gc) / float64(len(r.Seq))
}
