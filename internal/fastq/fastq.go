// Package fastq implements the FASTQ read-set substrate: the most common
// format for unmapped sequencing reads (§2.1 of the SAGe paper; as of 2025,
// 75.9% of publicly deposited whole-genome read sets are FASTQ).
//
// A FASTQ record is four lines: a header ('@'-prefixed), the DNA bases,
// a '+' separator, and one quality-score character per base (Phred+33).
// SAGe treats a file of records as a read set: an unordered multiset whose
// reads may be reordered during compression as long as bases, qualities,
// and headers stay associated (§5.1.3, §5.1.5).
//
// Three layers of reading are provided:
//
//   - Scanner / Parse: one record (or a whole file) at a time.
//   - BatchReader: a single stream grouped into fixed-size Batches, the
//     shard-sized work units of the parallel compression pipeline.
//   - MultiReader: many input files — lane splits, or interleaved R1/R2
//     paired-end mates with mate-name validation — batched so that no
//     batch spans two sources (the substrate of file-aware sharding,
//     see internal/shard.CompressSources).
package fastq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"sage/internal/genome"
)

// QualityOffset is the Phred+33 ASCII offset used by modern instruments.
const QualityOffset = 33

// MaxQuality is the largest Phred score we model (ASCII '~' - 33 = 93,
// but instruments emit ≤ 45; we keep the codec alphabet tight).
const MaxQuality = 63

// Record is one sequencing read.
type Record struct {
	// Header is the read name without the leading '@'.
	Header string
	// Seq holds the base codes (genome.BaseA..BaseN).
	Seq genome.Seq
	// Qual holds Phred scores (not ASCII), one per base. A nil Qual
	// means qualities were discarded (§5.1.5: optional).
	Qual []byte
}

// Validate checks internal consistency.
func (r *Record) Validate() error {
	if r.Qual != nil && len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("fastq: record %q: %d bases but %d quality scores",
			r.Header, len(r.Seq), len(r.Qual))
	}
	for i, q := range r.Qual {
		if q > MaxQuality {
			return fmt.Errorf("fastq: record %q: quality %d at %d exceeds %d",
				r.Header, q, i, MaxQuality)
		}
	}
	return nil
}

// Clone deep-copies the record.
func (r *Record) Clone() Record {
	out := Record{Header: r.Header, Seq: r.Seq.Clone()}
	if r.Qual != nil {
		out.Qual = append([]byte(nil), r.Qual...)
	}
	return out
}

// ReadSet is a collection of records plus bookkeeping that the
// compression experiments need.
type ReadSet struct {
	Records []Record
}

// TotalBases sums the read lengths.
func (rs *ReadSet) TotalBases() int {
	n := 0
	for i := range rs.Records {
		n += len(rs.Records[i].Seq)
	}
	return n
}

// HasQuality reports whether any record carries quality scores.
func (rs *ReadSet) HasQuality() bool {
	for i := range rs.Records {
		if rs.Records[i].Qual != nil {
			return true
		}
	}
	return false
}

// UncompressedSize returns the serialized FASTQ byte size (the
// denominator of the paper's compression ratios, Table 2).
func (rs *ReadSet) UncompressedSize() int {
	n := 0
	for i := range rs.Records {
		r := &rs.Records[i]
		n += 1 + len(r.Header) + 1 // @header\n
		n += len(r.Seq) + 1        // bases\n
		n += 2                     // +\n
		if r.Qual != nil {
			n += len(r.Qual)
		}
		n++ // \n
	}
	return n
}

// DNASize returns the byte size of the DNA lines only (bases + newline),
// the denominator used for DNA-only compression ratios.
func (rs *ReadSet) DNASize() int {
	n := 0
	for i := range rs.Records {
		n += len(rs.Records[i].Seq) + 1
	}
	return n
}

// QualSize returns the byte size of the quality lines only.
func (rs *ReadSet) QualSize() int {
	n := 0
	for i := range rs.Records {
		if rs.Records[i].Qual != nil {
			n += len(rs.Records[i].Qual) + 1
		}
	}
	return n
}

// AppendText appends the record's four FASTQ lines to buf and returns
// the extended slice. Callers that stream record by record (the
// original-order restore path) reuse one buffer across calls, the same
// O(1)-allocation discipline as ReadSet.Write.
func (r *Record) AppendText(buf []byte) []byte {
	buf = append(buf, '@')
	buf = append(buf, r.Header...)
	buf = append(buf, '\n')
	buf = genome.AppendASCII(buf, r.Seq)
	buf = append(buf, '\n', '+', '\n')
	for _, p := range r.Qual {
		buf = append(buf, p+QualityOffset)
	}
	return append(buf, '\n')
}

// Write serializes the read set as FASTQ text. One line buffer is
// reused across records, so serialization allocates O(1) regardless of
// read count.
func (rs *ReadSet) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var line []byte
	for i := range rs.Records {
		r := &rs.Records[i]
		if err := r.Validate(); err != nil {
			return err
		}
		line = r.AppendText(line[:0])
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Bytes serializes the read set to a byte slice.
func (rs *ReadSet) Bytes() []byte {
	var buf bytes.Buffer
	buf.Grow(rs.UncompressedSize())
	if err := rs.Write(&buf); err != nil {
		// Write to a bytes.Buffer only fails on invalid records.
		panic(err)
	}
	return buf.Bytes()
}

// Parse reads FASTQ text into a ReadSet. It is a convenience loop over
// Scanner; use Scanner or BatchReader directly to stream large files.
func Parse(r io.Reader) (*ReadSet, error) {
	sc := NewScanner(r)
	rs := &ReadSet{}
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return rs, nil
		}
		if err != nil {
			return nil, err
		}
		rs.Records = append(rs.Records, rec)
	}
}

// Equivalent reports whether two read sets contain the same multiset of
// (sequence, quality, header) records, ignoring order. SAGe (like Spring)
// reorders reads during compression (§5.1.3), so losslessness is defined
// at the set level.
func Equivalent(a, b *ReadSet) bool {
	if len(a.Records) != len(b.Records) {
		return false
	}
	ka := recordKeys(a)
	kb := recordKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func recordKeys(rs *ReadSet) []string {
	keys := make([]string, len(rs.Records))
	for i := range rs.Records {
		r := &rs.Records[i]
		keys[i] = r.Seq.String() + "\x00" + string(r.Qual) + "\x00" + r.Header
	}
	sort.Strings(keys)
	return keys
}

// Batch groups records for pipelined processing (§3.1: I/O, decompression
// and analysis operate on batches in a pipelined manner).
type Batch struct {
	// Index is the batch's global sequence number.
	Index int
	// Source is the index of the ingest source the records came from
	// (see MultiReader.Sources); 0 for single-source readers.
	Source  int
	Records []Record
}

// Batches splits the read set into batches of at most size records.
func (rs *ReadSet) Batches(size int) []Batch {
	if size <= 0 {
		size = 1
	}
	var out []Batch
	for i := 0; i < len(rs.Records); i += size {
		end := i + size
		if end > len(rs.Records) {
			end = len(rs.Records)
		}
		out = append(out, Batch{Index: len(out), Records: rs.Records[i:end]})
	}
	return out
}
