package fastq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sage/internal/genome"
)

func sampleSet() *ReadSet {
	return &ReadSet{Records: []Record{
		{Header: "r1", Seq: genome.MustFromString("ACGT"), Qual: []byte{30, 30, 12, 40}},
		{Header: "r2 desc", Seq: genome.MustFromString("GGNTA"), Qual: []byte{2, 2, 2, 2, 2}},
		{Header: "r3", Seq: genome.MustFromString("T"), Qual: []byte{0}},
	}}
}

func TestWriteParseRoundtrip(t *testing.T) {
	rs := sampleSet()
	var buf bytes.Buffer
	if err := rs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 {
		t.Fatalf("got %d records", len(got.Records))
	}
	for i := range rs.Records {
		a, b := rs.Records[i], got.Records[i]
		if a.Header != b.Header || !a.Seq.Equal(b.Seq) || !bytes.Equal(a.Qual, b.Qual) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestUncompressedSizeMatchesBytes(t *testing.T) {
	rs := sampleSet()
	if got, want := rs.UncompressedSize(), len(rs.Bytes()); got != want {
		t.Fatalf("UncompressedSize %d, serialized %d", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",                    // missing @
		"@r1\nACGT\n",               // truncated
		"@r1\nACGT\nX\nIIII\n",      // bad separator
		"@r1\nACGT\n+\nIII\n",       // quality length mismatch
		"@r1\nACXT\n+\nIIII\n",      // invalid base
		"@r1\nACGT\n+\nII\x01I\n",   // invalid quality char
		"@r1\nACGT\n+\nIIII\n@r2\n", // truncated second record
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

// TestParseEmptyQualityLine pins the truncation guard: a blank quality
// line under a non-empty sequence is how a file cut off mid-record (or
// corrupted in transit) usually reads, and the scanner used to accept
// it silently as an unscored record — turning scored reads into
// unscored ones and poisoning every downstream quality statistic. It is
// an error, named by line number.
func TestParseEmptyQualityLine(t *testing.T) {
	for _, in := range []string{
		"@r1\nACGT\n+\n\n",                    // truncated single record
		"@r1\nACGT\n+\n\n@r2\nTTT\n+\n\n",     // blank quality mid-file
		"@r1\nACGT\n+\nIIII\n@r2\nTTT\n+\n\n", // scored then truncated
	} {
		_, err := Parse(strings.NewReader(in))
		if err == nil {
			t.Errorf("blank quality line parsed silently: %q", in)
			continue
		}
		if !strings.Contains(err.Error(), "empty quality line") {
			t.Errorf("error does not name the blank quality line: %v", err)
		}
	}
	// The error points at the offending line.
	_, err := Parse(strings.NewReader("@r1\nACGT\n+\nIIII\n@r2\nTTT\n+\n\n"))
	if err == nil || !strings.Contains(err.Error(), "line 8") {
		t.Fatalf("error does not carry the line number: %v", err)
	}
	// A zero-length read with a zero-length quality line is degenerate
	// but internally consistent, not a truncation.
	rs, err := Parse(strings.NewReader("@empty\n\n+\n\n@r2\nTTT\n+\nIII\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 2 || len(rs.Records[0].Seq) != 0 {
		t.Fatalf("degenerate record parse: %+v", rs.Records)
	}
}

func TestValidate(t *testing.T) {
	r := Record{Header: "x", Seq: genome.MustFromString("ACG"), Qual: []byte{1, 2}}
	if err := r.Validate(); err == nil {
		t.Fatal("expected length mismatch error")
	}
	r = Record{Header: "x", Seq: genome.MustFromString("A"), Qual: []byte{200}}
	if err := r.Validate(); err == nil {
		t.Fatal("expected quality range error")
	}
}

func TestEquivalentIgnoresOrder(t *testing.T) {
	a := sampleSet()
	b := &ReadSet{Records: []Record{a.Records[2].Clone(), a.Records[0].Clone(), a.Records[1].Clone()}}
	if !Equivalent(a, b) {
		t.Fatal("reordered sets must be equivalent")
	}
	b.Records[0].Seq[0] = genome.BaseC
	if Equivalent(a, b) {
		t.Fatal("mutated set must not be equivalent")
	}
}

func TestEquivalentCountsDuplicates(t *testing.T) {
	r := Record{Header: "d", Seq: genome.MustFromString("ACGT"), Qual: []byte{1, 1, 1, 1}}
	a := &ReadSet{Records: []Record{r.Clone(), r.Clone()}}
	b := &ReadSet{Records: []Record{r.Clone(), {Header: "d", Seq: genome.MustFromString("ACGA"), Qual: []byte{1, 1, 1, 1}}}}
	if Equivalent(a, b) {
		t.Fatal("duplicate counting failed")
	}
}

func TestBatches(t *testing.T) {
	rs := &ReadSet{}
	for i := 0; i < 10; i++ {
		rs.Records = append(rs.Records, Record{Header: "r", Seq: genome.MustFromString("A")})
	}
	bs := rs.Batches(3)
	if len(bs) != 4 {
		t.Fatalf("got %d batches", len(bs))
	}
	total := 0
	for i, b := range bs {
		if b.Index != i {
			t.Fatalf("batch %d has index %d", i, b.Index)
		}
		total += len(b.Records)
	}
	if total != 10 {
		t.Fatalf("batches cover %d records", total)
	}
	if got := len(rs.Batches(0)); got != 10 {
		t.Fatalf("size 0 should clamp to 1, got %d batches", got)
	}
}

func TestTotalBasesAndSizes(t *testing.T) {
	rs := sampleSet()
	if rs.TotalBases() != 10 {
		t.Fatalf("TotalBases %d want 10", rs.TotalBases())
	}
	if rs.DNASize() != 13 {
		t.Fatalf("DNASize %d want 13", rs.DNASize())
	}
	if rs.QualSize() != 13 {
		t.Fatalf("QualSize %d want 13", rs.QualSize())
	}
}

func TestQuickWriteParse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := &ReadSet{}
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			l := rng.Intn(50) + 1
			seq := make(genome.Seq, l)
			qual := make([]byte, l)
			for j := 0; j < l; j++ {
				seq[j] = byte(rng.Intn(5))
				qual[j] = byte(rng.Intn(MaxQuality + 1))
			}
			rs.Records = append(rs.Records, Record{
				Header: "read", Seq: seq, Qual: qual,
			})
		}
		got, err := Parse(bytes.NewReader(rs.Bytes()))
		if err != nil {
			return false
		}
		return Equivalent(rs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
