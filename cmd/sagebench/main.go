// Command sagebench regenerates every table and figure of the SAGe
// paper's evaluation (§8) on the synthetic RS1–RS5 read sets.
//
// Usage:
//
//	sagebench [-scale 0.35] [-cal paper|measured] [-experiment fig13] [-list] [-json BENCH_7.json]
//
// With no -experiment it runs the full suite in order. The -cal flag
// selects whether software preparation throughputs come from timing this
// repository's Go decompressors on this machine (measured) or from the
// paper's published component ratios (paper); see DESIGN.md's
// hybrid-calibration note. The -json flag additionally writes every
// experiment's machine-readable metrics (latency percentiles, speedups,
// ratios) as one JSON object keyed by experiment ID.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sage/internal/bench"
)

// writeJSON collects each table's Metrics map into one document:
//
//	{"serve": {"cold_p99_ms": 1.9, ...}, "query": {...}, ...}
//
// Experiments without metrics are omitted rather than serialized as
// empty objects, so the file only states what was measured.
func writeJSON(path string, tables []*bench.Table) error {
	doc := make(map[string]map[string]float64)
	for _, tb := range tables {
		if len(tb.Metrics) > 0 {
			doc[tb.ID] = tb.Metrics
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	scale := flag.Float64("scale", 0.35, "dataset scale (1.0 ≈ a few MB of FASTQ per read set)")
	cal := flag.String("cal", "paper", "calibration for software prep rates: paper | measured")
	experiment := flag.String("experiment", "", "run a single experiment (e.g. fig13, tab2); empty = all")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonPath := flag.String("json", "", "write machine-readable metrics (experiment -> figures) to this file")
	flag.Parse()

	s := bench.NewSuite(*scale)
	switch *cal {
	case "paper":
		s.Cal = bench.CalPaper
	case "measured":
		s.Cal = bench.CalMeasured
	default:
		fmt.Fprintf(os.Stderr, "sagebench: unknown calibration %q\n", *cal)
		os.Exit(2)
	}
	if *list {
		for _, id := range s.IDs() {
			fmt.Println(id)
		}
		return
	}
	fmt.Printf("SAGe evaluation suite (scale=%.2f, calibration=%s)\n", *scale, *cal)
	start := time.Now()
	var tables []*bench.Table
	if *experiment != "" {
		tb, err := s.Run(*experiment)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb.Render())
		tables = []*bench.Table{tb}
	} else {
		var err error
		tables, err = s.All()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, tb := range tables {
			fmt.Println(tb.Render())
		}
		fmt.Printf("completed %d experiments in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *jsonPath)
	}
}
