// Command sagebench regenerates every table and figure of the SAGe
// paper's evaluation (§8) on the synthetic RS1–RS5 read sets.
//
// Usage:
//
//	sagebench [-scale 0.35] [-cal paper|measured] [-experiment fig13] [-list]
//
// With no -experiment it runs the full suite in order. The -cal flag
// selects whether software preparation throughputs come from timing this
// repository's Go decompressors on this machine (measured) or from the
// paper's published component ratios (paper); see DESIGN.md's
// hybrid-calibration note.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sage/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.35, "dataset scale (1.0 ≈ a few MB of FASTQ per read set)")
	cal := flag.String("cal", "paper", "calibration for software prep rates: paper | measured")
	experiment := flag.String("experiment", "", "run a single experiment (e.g. fig13, tab2); empty = all")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	s := bench.NewSuite(*scale)
	switch *cal {
	case "paper":
		s.Cal = bench.CalPaper
	case "measured":
		s.Cal = bench.CalMeasured
	default:
		fmt.Fprintf(os.Stderr, "sagebench: unknown calibration %q\n", *cal)
		os.Exit(2)
	}
	if *list {
		for _, id := range s.IDs() {
			fmt.Println(id)
		}
		return
	}
	fmt.Printf("SAGe evaluation suite (scale=%.2f, calibration=%s)\n", *scale, *cal)
	start := time.Now()
	if *experiment != "" {
		tb, err := s.Run(*experiment)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb.Render())
		return
	}
	tables, err := s.All()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
		os.Exit(1)
	}
	for _, tb := range tables {
		fmt.Println(tb.Render())
	}
	fmt.Printf("completed %d experiments in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
}
