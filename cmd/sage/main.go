// Command sage is the command-line front end of the SAGe codec:
//
//	sage simulate   generate a synthetic read set (+ reference)
//	sage compress   FASTQ -> .sage container
//	sage decompress .sage container -> FASTQ
//	sage inspect    show a container's streams, tables and statistics
//	sage verify     check two FASTQ files describe the same read multiset
//
// Compression needs a consensus: pass -ref, or use -denovo to assemble
// one from the reads (§2.2: "a user-provided reference, or a de-duplicated
// string derived from the reads").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"math/rand"

	"sage/internal/consensus"
	"sage/internal/core"
	"sage/internal/fastq"
	"sage/internal/genome"
	"sage/internal/shard"
	"sage/internal/simulate"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sage: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sage: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sage <command> [flags]

commands:
  simulate    -out reads.fastq -ref ref.txt [-long] [-genome 200000] [-reads 2000] [-seed 1]
  compress    -in reads.fastq -out reads.sage (-ref ref.txt | -denovo) [-no-quality] [-no-headers]
              [-shard-reads 4096] [-threads N]
  decompress  -in reads.sage -out reads.fastq [-ref ref.txt] [-threads N]
  inspect     -in reads.sage
  verify      -a a.fastq -b b.fastq

compress with -shard-reads 0 emits a single-block container; any other
value emits a sharded, seekable container whose shards are compressed
and decompressed in parallel on -threads workers (0 = all CPUs). With
-ref, sharded compression streams the input file batch by batch instead
of loading it whole.`)
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	out := fs.String("out", "reads.fastq", "output FASTQ path")
	refOut := fs.String("ref", "ref.txt", "output reference path")
	long := fs.Bool("long", false, "simulate nanopore-like long reads instead of short reads")
	genomeLen := fs.Int("genome", 200000, "reference genome length")
	nReads := fs.Int("reads", 2000, "number of reads")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, ref, err := simulateSet(*long, *genomeLen, *nReads, *seed)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*refOut, []byte(ref.String()+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rs.Write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d reads (%d bases) to %s; reference (%d bases) to %s\n",
		len(rs.Records), rs.TotalBases(), *out, len(ref), *refOut)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input FASTQ")
	out := fs.String("out", "", "output container (default: <in>.sage)")
	refPath := fs.String("ref", "", "consensus/reference sequence file")
	denovo := fs.Bool("denovo", false, "derive the consensus from the reads (de Bruijn assembly)")
	noQual := fs.Bool("no-quality", false, "discard quality scores")
	noHdr := fs.Bool("no-headers", false, "discard read names")
	shardReads := fs.Int("shard-reads", shard.DefaultShardReads, "reads per shard (0 = single-block container)")
	threads := fs.Int("threads", 0, "compression workers (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("compress: -in is required")
	}
	if *out == "" {
		*out = *in + ".sage"
	}

	shardOpt := func(cons genome.Seq) shard.Options {
		opt := shard.DefaultOptions(cons)
		opt.ShardReads = *shardReads
		opt.Workers = *threads
		opt.Core.IncludeQuality = !*noQual
		opt.Core.IncludeHeaders = !*noHdr
		return opt
	}

	// Sharded compression against a reference streams the input file:
	// the whole read set is never in memory at once. The container is
	// streamed to a temp file and renamed in, so a failed run never
	// clobbers an existing output.
	if *shardReads > 0 && !*denovo {
		if *refPath == "" {
			return fmt.Errorf("compress: pass -ref or -denovo")
		}
		cons, err := readRef(*refPath)
		if err != nil {
			return err
		}
		opt := shardOpt(cons)
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		of, err := os.Create(*out + ".tmp")
		if err != nil {
			return err
		}
		st, err := shard.CompressStream(fastq.NewBatchReader(f, opt.ShardReads), of, opt)
		if err == nil {
			err = of.Close()
		} else {
			of.Close()
		}
		if err != nil {
			os.Remove(*out + ".tmp")
			return err
		}
		if err := os.Rename(*out+".tmp", *out); err != nil {
			return err
		}
		fmt.Printf("%s: %d bytes in %d shards (%d reads, %d B header+index)\n",
			*out, st.CompressedBytes, st.Shards, st.Reads, st.HeaderBytes)
		return nil
	}

	rs, err := readFASTQ(*in)
	if err != nil {
		return err
	}
	var cons genome.Seq
	switch {
	case *denovo:
		c, err := consensus.FromReads(rs, consensus.DefaultConfig())
		if err != nil {
			return fmt.Errorf("compress: de-novo consensus: %w", err)
		}
		cons = c.Seq
		fmt.Printf("assembled consensus: %d bases in %d unitigs\n", len(cons), c.NumUnitigs)
	case *refPath != "":
		cons, err = readRef(*refPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("compress: pass -ref or -denovo")
	}
	raw := len(rs.Bytes())
	if *shardReads > 0 { // only reachable with -denovo: -ref returned above
		data, st, err := shard.Compress(rs, shardOpt(cons))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d -> %d bytes (%.2fx) in %d shards\n",
			*out, raw, len(data), float64(raw)/float64(len(data)), st.Shards)
		return nil
	}
	opt := core.DefaultOptions(cons)
	opt.IncludeQuality = !*noQual
	opt.IncludeHeaders = !*noHdr
	opt.Workers = *threads
	enc, err := core.Compress(rs, opt)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (%.2fx); %d/%d reads mapped, %d chimeric, %d corner\n",
		*out, raw, len(enc.Data), float64(raw)/float64(len(enc.Data)),
		enc.Stats.NumMapped, enc.Stats.NumReads, enc.Stats.NumChimeric, enc.Stats.NumCorner)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input container")
	out := fs.String("out", "", "output FASTQ (default: stdout)")
	refPath := fs.String("ref", "", "consensus file (only if not embedded)")
	threads := fs.Int("threads", 0, "decompression workers for sharded containers (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("decompress: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var cons genome.Seq
	if *refPath != "" {
		if cons, err = readRef(*refPath); err != nil {
			return err
		}
	}
	var rs *fastq.ReadSet
	if shard.IsContainer(data) {
		rs, err = shard.Decompress(data, cons, *threads)
	} else {
		rs, err = core.Decompress(data, cons)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rs.Write(w)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input container")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var info string
	if shard.IsContainer(data) {
		info, err = shard.Inspect(data)
	} else {
		info, err = core.Inspect(data)
	}
	if err != nil {
		return err
	}
	fmt.Print(info)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	a := fs.String("a", "", "first FASTQ")
	b := fs.String("b", "", "second FASTQ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ra, err := readFASTQ(*a)
	if err != nil {
		return err
	}
	rb, err := readFASTQ(*b)
	if err != nil {
		return err
	}
	if !fastq.Equivalent(ra, rb) {
		return fmt.Errorf("read sets differ")
	}
	fmt.Printf("equivalent: %d reads, %d bases\n", len(ra.Records), ra.TotalBases())
	return nil
}

func readFASTQ(path string) (*fastq.ReadSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fastq.Parse(f)
}

// readRef loads a reference: plain base text or single-record FASTA.
func readRef(path string) (genome.Seq, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ">") {
			continue
		}
		b.WriteString(line)
	}
	return genome.FromString(b.String())
}

// simulateSet generates a donor genome from a fresh reference and samples
// reads from it.
func simulateSet(long bool, genomeLen, nReads int, seed int64) (*fastq.ReadSet, genome.Seq, error) {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Random(rng, genomeLen)
	donor, _ := genome.Donor(rng, ref, genome.HumanLikeProfile())
	sim := simulate.New(rng, donor)
	if long {
		p := simulate.DefaultLongProfile()
		if p.MaxLen > genomeLen {
			p.MaxLen = genomeLen / 2
			p.MeanLen = genomeLen / 8
		}
		rs, err := sim.LongReads(nReads, p)
		return rs, ref, err
	}
	rs, err := sim.ShortReads(nReads, simulate.DefaultShortProfile())
	return rs, ref, err
}
