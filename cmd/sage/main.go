// Command sage is the command-line front end of the SAGe codec:
//
//	sage simulate   generate a synthetic read set (+ reference)
//	sage compress   FASTQ file(s) -> one .sage container; many inputs
//	                (lane splits, or -paired R1/R2 mates) become a single
//	                sharded container with a source manifest
//	sage recompress gzipped FASTQ archive(s) -> one .sage container,
//	                decoding member-parallel (bgzip/BGZF, PGZ1) or
//	                pipelined (generic gzip) — the migration path
//	sage decompress .sage container -> FASTQ
//	sage inspect    show a container's streams, tables and statistics
//	sage verify     check two FASTQ files describe the same read multiset
//	sage serve      serve a sharded container over HTTP, shard by shard
//	sage instorage  place a sharded container on the modeled SSD and
//	                dispatch its shards to per-channel scan units
//
// Compression needs a consensus: pass -ref, or use -denovo to assemble
// one from the reads (§2.2: "a user-provided reference, or a de-duplicated
// string derived from the reads").
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on a usage error
// (unknown command, bad flag, negative -threads, trailing arguments on
// commands that take none — compress consumes them as input files).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"math/rand"
	"time"

	"sage/internal/bench"
	"sage/internal/consensus"
	"sage/internal/core"
	"sage/internal/fastq"
	"sage/internal/genome"
	"sage/internal/instorage"
	"sage/internal/obs"
	"sage/internal/pargz"
	"sage/internal/reorder"
	"sage/internal/serve"
	"sage/internal/shard"
	"sage/internal/simulate"
	"sage/internal/ssd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "recompress":
		err = cmdRecompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "filter":
		err = cmdFilter(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "instorage":
		err = cmdInstorage(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sage: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sage: %v\n", err)
		if isUsageError(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks command-line mistakes (vs runtime failures) so main
// can exit 2, matching the flag package's own convention.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func isUsageError(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

// parseFlags runs fs over args and applies the validation every
// subcommand shares: flag errors and unknown trailing arguments are
// usage errors reported once through main (the FlagSets use
// ContinueOnError with discarded output so flag doesn't double-print).
func parseFlags(fs *flag.FlagSet, args []string) error {
	rest, err := parseFlagsArgs(fs, args)
	if err != nil {
		return err
	}
	if len(rest) > 0 {
		return usagef("%s: unexpected arguments %q", fs.Name(), rest)
	}
	return nil
}

// parseFlagsArgs is parseFlags for subcommands that consume positional
// arguments (compress takes its input files that way); it returns them
// instead of rejecting them.
func parseFlagsArgs(fs *flag.FlagSet, args []string) ([]string, error) {
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "usage of sage %s:\n", fs.Name())
			fs.SetOutput(os.Stderr)
			fs.PrintDefaults()
			os.Exit(0)
		}
		return nil, usageError{fmt.Errorf("%s: %w", fs.Name(), err)}
	}
	return fs.Args(), nil
}

// checkThreads rejects negative worker counts (0 means "all CPUs").
func checkThreads(name string, n int) error {
	if n < 0 {
		return usagef("%s: -threads must be >= 0 (0 = all CPUs), got %d", name, n)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sage <command> [flags]

commands:
  simulate    -out reads.fastq -ref ref.txt [-long] [-genome 200000] [-reads 2000] [-seed 1]
  compress    [flags] input.fastq [input2.fastq ...]   (or -in reads.fastq)
              -out reads.sage (-ref ref.txt | -denovo) [-paired] [-no-quality]
              [-no-headers] [-shard-reads 4096] [-threads N]
              [-reorder [-sort-mem MiB] [-tmpdir DIR]]
  recompress  [flags] archive.fq.gz [archive2.fq.gz ...]
              -ref ref.txt [-out reads.sage] [-paired] [-shard-reads 4096]
              [-threads N] [-reorder [-sort-mem MiB] [-tmpdir DIR]]
  decompress  -in reads.sage -out reads.fastq [-ref ref.txt] [-threads N]
              [-original-order [-sort-mem MiB] [-tmpdir DIR]]
  filter      -in reads.sage [-out match.fastq] [-ref ref.txt] [-threads N]
              [-min-avgphred F] [-max-ee F] [-min-len N] [-max-len N]
              [-min-gc F] [-max-gc F] [-kmer SEQ]
  inspect     -in reads.sage [-ref ref.txt]
  verify      -a a.fastq -b b.fastq
  serve       -in reads.sage [-in more.sage | -in dir/] [-addr :8844]
              [-ref ref.txt] [-cache-bytes N] [-threads N]
              [-pprof-addr :8845] [-slow-ms N]
  instorage   -in reads.sage [-ref ref.txt] [-channels 8]

compress with -shard-reads 0 emits a single-block container; any other
value emits a sharded, seekable container whose shards are compressed
and decompressed in parallel on -threads workers (0 = all CPUs). With
-ref, sharded compression streams the input file batch by batch instead
of loading it whole.

compress accepts many inputs (lane splits) and packs them all into ONE
sharded container with file-aware shard boundaries — no shard spans two
source files — and a per-shard source manifest (container format v3,
docs/FORMAT.md). With -paired, inputs are R1 R2 mate files taken
pairwise: records are interleaved mate by mate, mate names are
validated, and both mates always land in the same shard. Multi-file
ingest streams and therefore needs -ref. Example:

  sage compress -paired -ref ref.txt -out run.sage lane1_R1.fq lane1_R2.fq lane2_R1.fq lane2_R2.fq

compress inputs may be gzipped (detected by magic bytes, not file
extension); plain and gzipped files can be mixed freely, including in
-paired runs. bgzip/BGZF and PGZ1 inputs decode member-parallel on
-threads workers; generic single-member gzip decodes on a pipelined
readahead goroutine, so decompression overlaps parsing either way.

recompress is the gzip->sage migration path: it streams gzipped FASTQ
archives straight into one sharded container (same ingest pipeline as
compress, -ref required) and reports the ratio against both the raw
FASTQ and the gzip input, the decode throughput, each input's decode
tier, and a stage-attribution table proving the decoder was never the
critical path. Example:

  sage recompress -ref ref.txt -out run.sage lane1.fq.gz lane2.fq.gz

compress -reorder clump-sorts the reads by similarity (minimizer
MinHash) before sharding, so similar reads share shards and the
per-shard codec compresses them harder (container format v5). The sort
is out of core: at most -sort-mem MiB of reads are held in memory,
with sorted runs spilled under -tmpdir and k-way merged. The container
records the inverse permutation, so the reordering is fully reversible.
Mate pairs move as one unit and reads never cross source-file
boundaries.

decompress streams sharded containers: shards are decoded on -threads
workers but written in order, so peak memory is a few decoded shards,
never the whole read set. With -original-order a reordered (v5)
container is sorted back to the exact input order using the stored
permutation — also out of core, under the same -sort-mem/-tmpdir
bounds; for identity-order containers the flag is a free no-op.

serve hosts a registry of sharded containers, each opened lazily (only
indexes are resident). -in repeats, and a directory -in serves every
*.sage inside; each container is routed by base name under
/c/{name}/... (GET /containers lists them; the first container also
answers the legacy /shards, /shard/{i}, ... routes). Shard responses
carry Content-Length and an ETag derived from the shard's index crc32,
If-None-Match re-validation answers 304 without touching the
container, and raw blocks honor Range for resumable fetches. Decoded
shards are cached in one LRU bounded by -cache-bytes shared across all
containers; concurrent requests for the same cold shard are collapsed
into one decode on a -threads pool.

serve is fully instrumented: every response echoes X-Sage-Request-Id
(the client's, or a minted one), GET /metrics exposes per-endpoint
latency histograms, decode-pool queue-wait/decode histograms, and every
/stats counter in Prometheus text format, -slow-ms logs structured
slow-request lines with per-stage attribution to stderr, and
-pprof-addr serves net/http/pprof on a separate address (keep it
private — it is deliberately not on the data-plane listener).

filter runs a predicate over a sharded container in the compressed
domain (format v4): the per-shard zone maps — length/quality/GC
envelopes and a canonical k-mer sketch — prune shards that provably
cannot match, so those shards are never read or decoded; only the
survivors stream through the decoder. Matching records are written as
FASTQ and a pruning summary goes to stderr. An unset flag places no
constraint; -kmer prunes via the shard sketches and then matches the
exact subsequence.

instorage writes a sharded container onto the modeled SSD with
shard-aligned SAGe_Write placement (shard i on channel i mod
-channels, header/index pages round-robin) and streams every shard
through its channel's Scan/Read-Construction unit, reporting per-shard
flash-read + decode times, the keyed per-channel schedule, a scan-unit
pool sweep, and the flash-read -> scan-decode pipeline recurrence.
Every shard is really read back from the device model and functionally
decoded; payloads are checked against the container's crc32 index.

exit codes: 0 success, 1 runtime failure, 2 usage error.`)
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	out := fs.String("out", "reads.fastq", "output FASTQ path")
	refOut := fs.String("ref", "ref.txt", "output reference path")
	long := fs.Bool("long", false, "simulate nanopore-like long reads instead of short reads")
	genomeLen := fs.Int("genome", 200000, "reference genome length")
	nReads := fs.Int("reads", 2000, "number of reads")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rs, ref, err := simulateSet(*long, *genomeLen, *nReads, *seed)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*refOut, []byte(ref.String()+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	err = rs.Write(f)
	// Propagate the close error: on a full disk the last buffered write
	// surfaces here, and a truncated FASTQ must not be reported as
	// success.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d reads (%d bases) to %s; reference (%d bases) to %s\n",
		len(rs.Records), rs.TotalBases(), *out, len(ref), *refOut)
	return nil
}

// writeContainer streams a container produced by write into out via a
// temp file renamed in, so a failed run never clobbers an existing
// output. The publish is crash-safe: the temp file is fsynced, then
// its parent directory (so the temp's directory entry is durable),
// then renamed, then the directory again (so the rename is) — a power
// cut leaves either the old container or the new one, never a torn
// file. Every failure path removes the temp file.
func writeContainer(out string, write func(w io.Writer) (*shard.Stats, error)) (*shard.Stats, error) {
	tmp := out + ".tmp"
	of, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	st, err := write(of)
	if err == nil {
		err = of.Sync()
	}
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = syncDir(filepath.Dir(out))
	}
	if err == nil {
		err = os.Rename(tmp, out)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(filepath.Dir(out)); err != nil {
		return nil, err
	}
	return st, nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ContinueOnError)
	in := fs.String("in", "", "input FASTQ (alternative to positional inputs)")
	out := fs.String("out", "", "output container (default: <first input>.sage)")
	refPath := fs.String("ref", "", "consensus/reference sequence file")
	denovo := fs.Bool("denovo", false, "derive the consensus from the reads (de Bruijn assembly)")
	paired := fs.Bool("paired", false, "treat inputs as paired-end R1 R2 [R1 R2 ...] mate files, interleaved pairwise")
	noQual := fs.Bool("no-quality", false, "discard quality scores")
	noHdr := fs.Bool("no-headers", false, "discard read names")
	shardReads := fs.Int("shard-reads", shard.DefaultShardReads, "reads per shard (0 = single-block container)")
	threads := fs.Int("threads", 0, "compression workers (0 = all CPUs)")
	doReorder := fs.Bool("reorder", false, "clump-sort reads by similarity before sharding (container format v5; decompress -original-order recovers input order)")
	sortMem := fs.Int("sort-mem", 256, "reorder sort memory budget in MiB before spilling runs to disk")
	tmpDir := fs.String("tmpdir", "", "directory for reorder spill files (default: the system temp dir)")
	inputs, err := parseFlagsArgs(fs, args)
	if err != nil {
		return err
	}
	if err := checkThreads("compress", *threads); err != nil {
		return err
	}
	if *shardReads < 0 {
		return usagef("compress: -shard-reads must be >= 0 (0 = single block), got %d", *shardReads)
	}
	if *sortMem <= 0 {
		return usagef("compress: -sort-mem must be > 0 MiB, got %d", *sortMem)
	}
	if *doReorder && *shardReads == 0 {
		return usagef("compress: -reorder needs a sharded container; -shard-reads must be > 0")
	}
	if *doReorder && *denovo {
		return usagef("compress: -reorder streams its input and needs -ref (-denovo holds the whole read set in memory)")
	}
	sortCfg := reorder.SortConfig{MemBudget: int64(*sortMem) << 20, TmpDir: *tmpDir}
	// Inputs come positionally (possibly many) or via the classic -in
	// (exactly one) — never both, and never silently dropped.
	if *in != "" {
		if len(inputs) > 0 {
			return usagef("compress: pass inputs either via -in or as arguments, not both (-in %s plus %q)", *in, inputs)
		}
		inputs = []string{*in}
	}
	if len(inputs) == 0 {
		return usagef("compress: at least one input FASTQ is required (-in file, or positional arguments)")
	}
	if *paired && len(inputs)%2 != 0 {
		return usagef("compress: -paired needs an even number of inputs (R1 R2 [R1 R2 ...]), got %d", len(inputs))
	}
	if *out == "" {
		*out = inputs[0] + ".sage"
	}

	shardOpt := func(cons genome.Seq) shard.Options {
		opt := shard.DefaultOptions(cons)
		opt.ShardReads = *shardReads
		opt.Workers = *threads
		opt.Core.IncludeQuality = !*noQual
		opt.Core.IncludeHeaders = !*noHdr
		return opt
	}

	// Multi-file (or paired-end) ingest: all inputs stream into one
	// sharded container with file-aware shard boundaries and a source
	// manifest (container format v3, see docs/FORMAT.md).
	if *paired || len(inputs) > 1 {
		return compressSources(inputs, *out, *refPath, *paired, *denovo, *shardReads, *doReorder, sortCfg, shardOpt)
	}

	// Sharded compression against a reference streams the input file:
	// the whole read set is never in memory at once.
	if *shardReads > 0 && !*denovo {
		if *refPath == "" {
			return fmt.Errorf("compress: pass -ref or -denovo")
		}
		cons, err := readRef(*refPath)
		if err != nil {
			return err
		}
		opt := shardOpt(cons)
		f, err := os.Open(inputs[0])
		if err != nil {
			return err
		}
		defer f.Close()
		// Inputs may be gzipped: the source stage sniffs the magic and
		// decompresses transparently — member-parallel on -threads
		// workers for BGZF/PGZ1 inputs, pipelined for generic gzip.
		r, err := fastq.Sniff(f, fastq.SniffOptions{Name: inputs[0], Threads: *threads})
		if err != nil {
			return err
		}
		defer fastq.CloseSniffed(r)
		var src fastq.BatchSource = fastq.NewBatchReader(r, opt.ShardReads)
		if *doReorder {
			stage, err := reorder.NewStage(src, reorder.Config{
				Mode: reorder.ModeClump, BatchSize: opt.ShardReads, Sort: sortCfg,
			})
			if err != nil {
				return err
			}
			defer stage.Close()
			src = stage
		}
		st, err := writeContainer(*out, func(w io.Writer) (*shard.Stats, error) {
			return shard.CompressPipeline(src, w, opt)
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d bytes in %d shards (%d reads, %d B header+index)%s\n",
			*out, st.CompressedBytes, st.Shards, st.Reads, st.HeaderBytes, reorderNote(st))
		return nil
	}

	rs, err := readFASTQ(inputs[0])
	if err != nil {
		return err
	}
	var cons genome.Seq
	switch {
	case *denovo:
		c, err := consensus.FromReads(rs, consensus.DefaultConfig())
		if err != nil {
			return fmt.Errorf("compress: de-novo consensus: %w", err)
		}
		cons = c.Seq
		fmt.Printf("assembled consensus: %d bases in %d unitigs\n", len(cons), c.NumUnitigs)
	case *refPath != "":
		cons, err = readRef(*refPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("compress: pass -ref or -denovo")
	}
	raw := len(rs.Bytes())
	if *shardReads > 0 { // only reachable with -denovo: -ref returned above
		data, st, err := shard.Compress(rs, shardOpt(cons))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d -> %d bytes (%.2fx) in %d shards\n",
			*out, raw, len(data), float64(raw)/float64(len(data)), st.Shards)
		return nil
	}
	opt := core.DefaultOptions(cons)
	opt.IncludeQuality = !*noQual
	opt.IncludeHeaders = !*noHdr
	opt.Workers = *threads
	enc, err := core.Compress(rs, opt)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (%.2fx); %d/%d reads mapped, %d chimeric, %d corner\n",
		*out, raw, len(enc.Data), float64(raw)/float64(len(enc.Data)),
		enc.Stats.NumMapped, enc.Stats.NumReads, enc.Stats.NumChimeric, enc.Stats.NumCorner)
	return nil
}

// compressSources runs multi-file (optionally paired-end) ingest: it
// opens every input (gzip is sniffed per file), builds the file-aware
// batching reader, optionally interposes the similarity-reorder stage,
// and streams one manifest-bearing container.
func compressSources(inputs []string, out, refPath string, paired, denovo bool, shardReads int,
	doReorder bool, sortCfg reorder.SortConfig, shardOpt func(genome.Seq) shard.Options) error {
	if shardReads <= 0 {
		return usagef("compress: multi-file ingest writes a sharded container; -shard-reads must be > 0")
	}
	if denovo {
		return fmt.Errorf("compress: multi-file ingest streams its inputs and needs -ref (-denovo would require the whole read set in memory)")
	}
	if refPath == "" {
		return fmt.Errorf("compress: multi-file ingest needs -ref")
	}
	cons, err := readRef(refPath)
	if err != nil {
		return err
	}
	opt := shardOpt(cons)

	files := make([]*os.File, 0, len(inputs))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	readers := make([]io.Reader, 0, len(inputs))
	defer func() {
		for _, r := range readers {
			fastq.CloseSniffed(r)
		}
	}()
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		files = append(files, f)
		// Per-file gzip sniff: a run may mix plain and gzipped lanes,
		// each decoding on its own pargz reader bounded by -threads.
		r, err := fastq.Sniff(f, fastq.SniffOptions{Name: path, Threads: opt.Workers})
		if err != nil {
			return err
		}
		readers = append(readers, r)
	}
	// Manifest names are base names: the container travels, local
	// directory layouts don't. That makes duplicates ambiguous — the
	// manifest and /file/{name}/shards could no longer tell the inputs
	// apart — so reject them up front.
	seen := make(map[string]string, len(inputs))
	for _, path := range inputs {
		base := filepath.Base(path)
		if prev, dup := seen[base]; dup {
			return usagef("compress: inputs %s and %s would both be recorded as %q in the source manifest; rename one", prev, path, base)
		}
		seen[base] = path
	}
	var mr *fastq.MultiReader
	if paired {
		pairs := make([][2]fastq.NamedReader, 0, len(readers)/2)
		for i := 0; i+1 < len(readers); i += 2 {
			pairs = append(pairs, [2]fastq.NamedReader{
				{Name: filepath.Base(inputs[i]), R: readers[i]},
				{Name: filepath.Base(inputs[i+1]), R: readers[i+1]},
			})
		}
		mr, err = fastq.NewPairedReader(pairs, opt.ShardReads)
	} else {
		named := make([]fastq.NamedReader, 0, len(readers))
		for i, r := range readers {
			named = append(named, fastq.NamedReader{Name: filepath.Base(inputs[i]), R: r})
		}
		mr, err = fastq.NewMultiReader(named, opt.ShardReads)
	}
	if err != nil {
		return err
	}
	var src fastq.BatchSource = mr
	if doReorder {
		stage, err := reorder.NewStage(mr, reorder.Config{
			Mode: reorder.ModeClump, BatchSize: mr.BatchSize(), Paired: paired, Sort: sortCfg,
		})
		if err != nil {
			return err
		}
		defer stage.Close()
		src = stage
	}
	st, err := writeContainer(out, func(w io.Writer) (*shard.Stats, error) {
		return shard.CompressPipeline(src, w, opt)
	})
	if err != nil {
		return err
	}
	mode := "files"
	if paired {
		mode = "paired-end mate files"
	}
	fmt.Printf("%s: %d bytes in %d shards (%d reads from %d %s, %d B header+index)%s\n",
		out, st.CompressedBytes, st.Shards, st.Reads, len(inputs), mode, st.HeaderBytes, reorderNote(st))
	srcs, perSrc := mr.Sources(), mr.SourceReads()
	for i, s := range srcs {
		fmt.Printf("  %s: %d reads\n", s.Display(), perSrc[i])
	}
	return nil
}

// cmdRecompress is the gzip→sage migration path: it streams gzipped
// FASTQ archives (bgzip/BGZF and PGZ1 inputs decode member-parallel,
// generic gzip pipelined) straight into one sharded container and
// reports what the migration bought — ratio against both the raw FASTQ
// and the gzip input, decode throughput, per-input decode tier, and a
// stage-attribution table showing decompression never owned the
// critical path.
func cmdRecompress(args []string) error {
	fs := flag.NewFlagSet("recompress", flag.ContinueOnError)
	out := fs.String("out", "", "output container (default: first input, .gz stripped, + .sage)")
	refPath := fs.String("ref", "", "consensus/reference sequence file (required: recompress streams)")
	paired := fs.Bool("paired", false, "treat inputs as paired-end R1 R2 [R1 R2 ...] mate files, interleaved pairwise")
	shardReads := fs.Int("shard-reads", shard.DefaultShardReads, "reads per shard")
	threads := fs.Int("threads", 0, "decode + compression workers (0 = all CPUs)")
	doReorder := fs.Bool("reorder", false, "clump-sort reads by similarity before sharding (container format v5)")
	sortMem := fs.Int("sort-mem", 256, "reorder sort memory budget in MiB before spilling runs to disk")
	tmpDir := fs.String("tmpdir", "", "directory for reorder spill files (default: the system temp dir)")
	inputs, err := parseFlagsArgs(fs, args)
	if err != nil {
		return err
	}
	if err := checkThreads("recompress", *threads); err != nil {
		return err
	}
	if *shardReads <= 0 {
		return usagef("recompress: -shard-reads must be > 0, got %d", *shardReads)
	}
	if *sortMem <= 0 {
		return usagef("recompress: -sort-mem must be > 0 MiB, got %d", *sortMem)
	}
	if len(inputs) == 0 {
		return usagef("recompress: at least one gzipped FASTQ input is required")
	}
	if *paired && len(inputs)%2 != 0 {
		return usagef("recompress: -paired needs an even number of inputs (R1 R2 [R1 R2 ...]), got %d", len(inputs))
	}
	if *refPath == "" {
		return usagef("recompress: -ref is required (recompress streams its inputs)")
	}
	if *out == "" {
		*out = strings.TrimSuffix(strings.TrimSuffix(inputs[0], ".gz"), ".gzip") + ".sage"
	}
	cons, err := readRef(*refPath)
	if err != nil {
		return err
	}
	opt := shard.DefaultOptions(cons)
	opt.ShardReads = *shardReads
	opt.Workers = *threads

	seen := make(map[string]string, len(inputs))
	for _, path := range inputs {
		base := filepath.Base(path)
		if prev, dup := seen[base]; dup {
			return usagef("recompress: inputs %s and %s would both be recorded as %q in the source manifest; rename one", prev, path, base)
		}
		seen[base] = path
	}

	trace := obs.NewTrace("recompress")
	start := time.Now()
	var (
		files    []*os.File
		readers  []io.Reader
		inBytes  int64 // compressed (on-disk) input bytes
		decoders []*pargz.Reader
	)
	defer func() {
		for _, r := range readers {
			fastq.CloseSniffed(r)
		}
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		files = append(files, f)
		if fi, err := f.Stat(); err == nil {
			inBytes += fi.Size()
		}
		r, err := fastq.Sniff(f, fastq.SniffOptions{Name: path, Threads: *threads, Trace: trace})
		if err != nil {
			return err
		}
		readers = append(readers, r)
		if zr, ok := r.(*pargz.Reader); ok {
			decoders = append(decoders, zr)
		} else {
			decoders = append(decoders, nil)
		}
	}

	// Count decoded FASTQ bytes per input (pargz stats cover compressed
	// inputs; the wrapper covers plain-text ones uniformly).
	counted := make([]*countingReader, len(readers))
	named := make([]fastq.NamedReader, len(readers))
	for i, r := range readers {
		counted[i] = &countingReader{r: r}
		named[i] = fastq.NamedReader{Name: filepath.Base(inputs[i]), R: counted[i]}
	}
	var mr *fastq.MultiReader
	if *paired {
		pairs := make([][2]fastq.NamedReader, 0, len(named)/2)
		for i := 0; i+1 < len(named); i += 2 {
			pairs = append(pairs, [2]fastq.NamedReader{named[i], named[i+1]})
		}
		mr, err = fastq.NewPairedReader(pairs, opt.ShardReads)
	} else {
		mr, err = fastq.NewMultiReader(named, opt.ShardReads)
	}
	if err != nil {
		return err
	}
	var src fastq.BatchSource = mr
	if *doReorder {
		stage, err := reorder.NewStage(mr, reorder.Config{
			Mode: reorder.ModeClump, BatchSize: mr.BatchSize(), Paired: *paired,
			Sort: reorder.SortConfig{MemBudget: int64(*sortMem) << 20, TmpDir: *tmpDir},
		})
		if err != nil {
			return err
		}
		defer stage.Close()
		src = stage
	}
	st, err := writeContainer(*out, func(w io.Writer) (*shard.Stats, error) {
		sp := trace.StartSpan("shard-compress")
		defer sp.End()
		return shard.CompressPipeline(src, w, opt)
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var fastqBytes int64
	for _, c := range counted {
		fastqBytes += c.n
	}
	fmt.Printf("%s: %d bytes in %d shards (%d reads from %d inputs)%s\n",
		*out, st.CompressedBytes, st.Shards, st.Reads, len(inputs), reorderNote(st))
	for i, path := range inputs {
		if zr := decoders[i]; zr != nil {
			zst := zr.Stats()
			fmt.Printf("  %s: %s, %d members, %d B compressed -> %d B FASTQ\n",
				filepath.Base(path), zr.Tier(), zst.Members, zst.CompressedBytes, zst.DecodedBytes)
		} else {
			fmt.Printf("  %s: plain FASTQ, %d B\n", filepath.Base(path), counted[i].n)
		}
	}
	containerBytes := int64(st.CompressedBytes)
	fmt.Printf("totals: %d B gzip input -> %d B FASTQ -> %d B sage\n",
		inBytes, fastqBytes, containerBytes)
	if containerBytes > 0 && fastqBytes > 0 {
		fmt.Printf("  sage vs FASTQ: %.2fx   sage vs gzip input: %.2fx\n",
			float64(fastqBytes)/float64(containerBytes),
			float64(inBytes)/float64(containerBytes))
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		fmt.Printf("  decoded+recompressed in %.2fs (%.1f MB/s FASTQ-side, %.1f MB/s gzip-side)\n",
			secs, float64(fastqBytes)/1e6/secs, float64(inBytes)/1e6/secs)
	}
	fmt.Printf("stage attribution (gunzip-wait is decode stalling the pipeline):\n%s",
		obs.StageTable(trace.Stages()))
	return nil
}

// countingReader counts bytes delivered; recompress uses it to report
// FASTQ-side volume uniformly across compressed and plain inputs.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// reorderNote renders the reorder suffix of a compress report line.
func reorderNote(st *shard.Stats) string {
	if st.ReorderMode == shard.ReorderNone {
		return ""
	}
	return "; clump-reordered (v5, original order recoverable)"
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ContinueOnError)
	in := fs.String("in", "", "input container")
	out := fs.String("out", "", "output FASTQ (default: stdout)")
	refPath := fs.String("ref", "", "consensus file (only if not embedded)")
	threads := fs.Int("threads", 0, "decompression workers for sharded containers (0 = all CPUs)")
	origOrder := fs.Bool("original-order", false, "emit reads in the exact original input order (reordered v5 containers sort back out of core)")
	sortMem := fs.Int("sort-mem", 256, "original-order sort memory budget in MiB before spilling runs to disk")
	tmpDir := fs.String("tmpdir", "", "directory for original-order spill files (default: the system temp dir)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := checkThreads("decompress", *threads); err != nil {
		return err
	}
	if *in == "" {
		return usagef("decompress: -in is required")
	}
	if *sortMem <= 0 {
		return usagef("decompress: -sort-mem must be > 0 MiB, got %d", *sortMem)
	}
	inF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	var magic [4]byte
	if _, err := io.ReadFull(inF, magic[:]); err != nil {
		return fmt.Errorf("decompress: reading %s: %w", *in, err)
	}
	var cons genome.Seq
	if *refPath != "" {
		if cons, err = readRef(*refPath); err != nil {
			return err
		}
	}
	w := io.Writer(os.Stdout)
	var outF *os.File
	if *out != "" {
		if outF, err = os.Create(*out); err != nil {
			return err
		}
		w = outF
	}
	if shard.IsContainer(magic[:]) {
		// Sharded containers stream: the container is opened lazily
		// (only the index is resident) and shards are decoded on a
		// -threads pool but written in order, holding at most
		// workers+1 decoded shards — peak memory is O(workers × shard),
		// never O(container).
		var fi os.FileInfo
		if fi, err = inF.Stat(); err == nil {
			var c *shard.Container
			if c, err = shard.Open(inF, fi.Size()); err == nil {
				if *origOrder {
					// Identity-order containers fall straight through to
					// DecompressTo inside; reordered (v5) containers sort
					// back under the -sort-mem budget, spilling to
					// -tmpdir.
					err = c.DecompressOriginalTo(w, cons, *threads,
						reorder.SortConfig{MemBudget: int64(*sortMem) << 20, TmpDir: *tmpDir})
				} else {
					err = c.DecompressTo(w, cons, *threads)
				}
			}
		}
	} else {
		// Single-block containers are one codec block: the decoder
		// needs it whole either way (and already decodes in input
		// order, so -original-order is naturally satisfied). Reuse the
		// open handle (the magic probe consumed its first 4 bytes)
		// rather than reading the file a second time.
		var data []byte
		if data, err = io.ReadAll(io.MultiReader(bytes.NewReader(magic[:]), inF)); err == nil {
			var rs *fastq.ReadSet
			if rs, err = core.Decompress(data, cons); err == nil {
				err = rs.Write(w)
			}
		}
	}
	if outF != nil {
		// The close error matters: on a full disk the final flush fails
		// here, and swallowing it would report a truncated FASTQ as
		// success.
		if cerr := outF.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func cmdFilter(args []string) error {
	fs := flag.NewFlagSet("filter", flag.ContinueOnError)
	in := fs.String("in", "", "input sharded container")
	out := fs.String("out", "", "output FASTQ of matching records (default: stdout)")
	refPath := fs.String("ref", "", "consensus file (only if not embedded)")
	minAvgPhred := fs.Float64("min-avgphred", 0, "keep reads with mean Phred >= this")
	maxEE := fs.Float64("max-ee", 0, "keep reads with expected errors <= this")
	minLen := fs.Int("min-len", 0, "keep reads at least this long")
	maxLen := fs.Int("max-len", 0, "keep reads at most this long")
	minGC := fs.Float64("min-gc", 0, "keep reads with GC fraction >= this")
	maxGC := fs.Float64("max-gc", 0, "keep reads with GC fraction <= this")
	kmer := fs.String("kmer", "", "keep reads containing this subsequence (ACGTN)")
	threads := fs.Int("threads", 0, "decode workers for surviving shards (0 = all CPUs)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := checkThreads("filter", *threads); err != nil {
		return err
	}
	if *in == "" {
		return usagef("filter: -in is required")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"min-avgphred", *minAvgPhred}, {"max-ee", *maxEE},
		{"min-gc", *minGC}, {"max-gc", *maxGC},
	} {
		if f.v < 0 {
			return usagef("filter: -%s must be >= 0, got %g", f.name, f.v)
		}
	}
	if *minLen < 0 || *maxLen < 0 {
		return usagef("filter: -min-len and -max-len must be >= 0")
	}
	if *minLen > 0 && *maxLen > 0 && *minLen > *maxLen {
		return usagef("filter: -min-len %d exceeds -max-len %d", *minLen, *maxLen)
	}
	if *minGC > 0 && *maxGC > 0 && *minGC > *maxGC {
		return usagef("filter: -min-gc %g exceeds -max-gc %g", *minGC, *maxGC)
	}
	pred := &shard.Predicate{
		MinAvgPhred: *minAvgPhred, MaxEE: *maxEE,
		MinLen: *minLen, MaxLen: *maxLen,
		MinGC: *minGC, MaxGC: *maxGC,
	}
	if *kmer != "" {
		seq, err := genome.FromString(*kmer)
		if err != nil {
			return usagef("filter: -kmer: %v", err)
		}
		pred.Subseq = seq
	}
	var cons genome.Seq
	var err error
	if *refPath != "" {
		if cons, err = readRef(*refPath); err != nil {
			return err
		}
	}
	c, inF, err := shard.OpenFile(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	w := io.Writer(os.Stdout)
	var outF *os.File
	if *out != "" {
		if outF, err = os.Create(*out); err != nil {
			return err
		}
		w = outF
	}
	st, err := c.Filter(w, cons, pred, *threads)
	if outF != nil {
		if cerr := outF.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if !c.HasZoneMaps() {
		fmt.Fprintf(os.Stderr, "sage filter: note: %s predates format v4 (no zone maps); every shard was scanned\n", *in)
	}
	fmt.Fprintf(os.Stderr, "sage filter: %s: %d/%d shards pruned (zero I/O), %d scanned; %d/%d reads matched\n",
		pred.String(), st.ShardsPruned, st.ShardsTotal, st.ShardsScanned, st.ReadsMatched, st.ReadsScanned)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "input container")
	refPath := fs.String("ref", "", "consensus file for ratio columns (only if not embedded)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("inspect: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var cons genome.Seq
	if *refPath != "" {
		if cons, err = readRef(*refPath); err != nil {
			return err
		}
	}
	var info string
	if shard.IsContainer(data) {
		info, err = shard.Inspect(data, cons)
	} else {
		if cons != nil {
			fmt.Fprintln(os.Stderr, "sage: note: -ref only affects sharded containers; single-block inspect has no ratio columns")
		}
		info, err = core.Inspect(data)
	}
	if err != nil {
		return err
	}
	fmt.Print(info)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	a := fs.String("a", "", "first FASTQ")
	b := fs.String("b", "", "second FASTQ")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return usagef("verify: -a and -b are required")
	}
	ra, err := readFASTQ(*a)
	if err != nil {
		return err
	}
	rb, err := readFASTQ(*b)
	if err != nil {
		return err
	}
	if !fastq.Equivalent(ra, rb) {
		return fmt.Errorf("read sets differ")
	}
	fmt.Printf("equivalent: %d reads, %d bases\n", len(ra.Records), ra.TotalBases())
	return nil
}

// repeatableFlag collects every occurrence of a repeated string flag.
type repeatableFlag []string

func (f *repeatableFlag) String() string     { return strings.Join(*f, ", ") }
func (f *repeatableFlag) Set(v string) error { *f = append(*f, v); return nil }

// serveInputs expands the -in values into concrete container paths: a
// directory contributes every *.sage file in it (sorted), a file
// contributes itself.
func serveInputs(ins []string) ([]string, error) {
	var paths []string
	for _, in := range ins {
		fi, err := os.Stat(in)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, in)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(in, "*.sage"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("serve: directory %s contains no *.sage containers", in)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths, nil
}

// containerName derives the registry name a container is routed under:
// its base name without the .sage extension.
func containerName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".sage")
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var ins repeatableFlag
	fs.Var(&ins, "in", "sharded container to serve (repeatable; a directory serves every *.sage in it)")
	addr := fs.String("addr", ":8844", "listen address")
	refPath := fs.String("ref", "", "consensus file (only if not embedded in the containers)")
	cacheBytes := fs.Int64("cache-bytes", serve.DefaultCacheBytes, "decoded-shard cache budget in bytes, shared across containers")
	threads := fs.Int("threads", 0, "decode workers (0 = all CPUs)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this extra address (empty = off)")
	slowMs := fs.Int("slow-ms", 0, "log requests slower than this many milliseconds to stderr (0 = off)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *slowMs < 0 {
		return usagef("serve: -slow-ms must be >= 0, got %d", *slowMs)
	}
	if err := checkThreads("serve", *threads); err != nil {
		return err
	}
	if len(ins) == 0 {
		return usagef("serve: at least one -in container (or directory of containers) is required")
	}
	if *cacheBytes <= 0 {
		// serve.Config treats <= 0 as "use the default", which would
		// silently contradict a 0 the operator meant as "no cache".
		return usagef("serve: -cache-bytes must be > 0, got %d", *cacheBytes)
	}
	paths, err := serveInputs(ins)
	if err != nil {
		return err
	}
	// Containers are routed by base name (sans .sage), so two inputs
	// that would collide must be renamed rather than silently shadowed.
	seen := make(map[string]string, len(paths))
	for _, path := range paths {
		name := containerName(path)
		if prev, dup := seen[name]; dup {
			return usagef("serve: %s and %s would both be served as /c/%s/...; rename one", prev, path, name)
		}
		seen[name] = path
	}

	// Open each container lazily: only headers and indexes are read
	// now; blocks are fetched shard by shard as clients ask for them.
	var named []serve.Named
	for _, path := range paths {
		c, f, err := shard.OpenFile(path)
		if err != nil {
			if pf, perr := os.Open(path); perr == nil {
				var magic [4]byte
				_, rerr := io.ReadFull(pf, magic[:])
				pf.Close()
				if rerr == nil && core.IsContainer(magic[:]) {
					return fmt.Errorf("serve: %s is a single-block container; only sharded containers are servable (recompress with -shard-reads > 0)", path)
				}
			}
			return err
		}
		defer f.Close()
		named = append(named, serve.Named{Name: containerName(path), C: c})
	}
	cfg := serve.Config{
		CacheBytes:  *cacheBytes,
		Workers:     *threads,
		SlowRequest: time.Duration(*slowMs) * time.Millisecond,
	}
	if *refPath != "" {
		if cfg.Consensus, err = readRef(*refPath); err != nil {
			return err
		}
	}
	s, err := serve.NewMulti(named, cfg)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// pprof lives on its own listener and mux, never the serving
		// address: profiling endpoints must not be reachable by shard
		// clients, and the import's DefaultServeMux registration must
		// not leak into the data plane.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Printf("pprof on %s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "serve: pprof listener: %v\n", err)
			}
		}()
	}
	fmt.Printf("serving %d container(s) on %s (shared cache budget %d B):\n", len(named), *addr, *cacheBytes)
	for i, nc := range named {
		def := ""
		if i == 0 {
			def = "  (default: legacy /shards etc. alias it)"
		}
		fmt.Printf("  /c/%s: %d reads in %d shards (%d B blocks)%s\n",
			nc.Name, nc.C.Index.TotalReads, nc.C.NumShards(), nc.C.Index.BlockBytes(), def)
	}
	fmt.Printf("endpoints: /containers /c/{name}/shards /c/{name}/shard/{i}[/reads] /c/{name}/query /c/{name}/files /c/{name}/file/{file}/shards /stats /metrics\n")
	fmt.Printf("shard responses carry ETag (= index crc32) and Content-Length; If-None-Match answers 304; raw blocks honor Range\n")
	return http.ListenAndServe(*addr, s)
}

func cmdInstorage(args []string) error {
	fs := flag.NewFlagSet("instorage", flag.ContinueOnError)
	in := fs.String("in", "", "input sharded container")
	refPath := fs.String("ref", "", "consensus file (only if not embedded)")
	channels := fs.Int("channels", 0, "SSD channels = scan units (0 = default geometry)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("instorage: -in is required")
	}
	// Cap the sweep: FTL bookkeeping scales with channel count, and no
	// real controller goes past a few dozen channels — an absurd value
	// should be a usage error, not an allocation blow-up.
	const maxChannels = 256
	if *channels < 0 || *channels > maxChannels {
		return usagef("instorage: -channels must be in [0,%d] (0 = default geometry), got %d", maxChannels, *channels)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if !shard.IsContainer(data) {
		if core.IsContainer(data) {
			return fmt.Errorf("instorage: %s is a single-block container; the dispatch engine needs shards (recompress with -shard-reads > 0)", *in)
		}
		return fmt.Errorf("instorage: %s is not a SAGe container", *in)
	}
	var cons genome.Seq
	if *refPath != "" {
		if cons, err = readRef(*refPath); err != nil {
			return err
		}
	}
	cfg := ssd.DefaultConfig()
	if *channels > 0 {
		cfg.Geometry.Channels = *channels
	}
	dev, err := ssd.New(cfg)
	if err != nil {
		return err
	}
	eng := instorage.New(dev)
	p, err := eng.Place(filepath.Base(*in), data)
	if err != nil {
		return err
	}
	fmt.Printf("SAGe_Write: %d bytes, %d shards placed shard-aligned across %d channels in %v (modeled)\n",
		len(data), p.C.NumShards(), eng.Channels(), p.WriteTime.Round(time.Microsecond))
	res, err := p.Scan(cons)
	if err != nil {
		return err
	}
	fmt.Printf("%6s  %7s  %5s  %10s  %12s  %12s  %12s\n",
		"shard", "channel", "pages", "bytes", "flash-read", "decode", "service")
	for _, st := range res.PerShard {
		fmt.Printf("%6d  %7d  %5d  %10d  %12v  %12v  %12v\n",
			st.Shard, st.Channel, st.Pages, st.CompressedBytes,
			st.FlashRead.Round(time.Microsecond), st.Decode.Round(time.Microsecond),
			st.Service.Round(time.Microsecond))
	}
	fmt.Printf("scanned: %d reads, %d B compressed -> %d B FASTQ; every payload matched the container's crc32 index\n",
		res.Reads, res.CompressedBytes, res.OutputBytes)
	fmt.Printf("host wall-clock stage attribution (measured, functional model):\n%s", res.StageTable())
	if bound := res.DecodeBound(); len(bound) == 0 {
		fmt.Printf("scan-unit decode is never the critical path: flash supply dominates every shard (NAND-bound, paper 8.2)\n")
	} else {
		fmt.Printf("WARNING: shards %v are decode-bound\n", bound)
	}
	fmt.Printf("keyed dispatch (shard i -> channel i mod %d): makespan %v\n",
		res.Channels, res.ChannelMakespan.Round(time.Microsecond))
	times := res.ServiceTimes()
	fmt.Printf("scan-unit pool schedule (bench.ShardMakespan):\n")
	for _, u := range unitSweep(res.Channels) {
		mk := bench.ShardMakespan(times, u)
		fmt.Printf("  %2d unit(s): %12v  (%.2fx, %.2f GB/s decoded)\n",
			u, mk.Round(time.Microsecond), bench.ShardSpeedup(times, u),
			float64(res.OutputBytes)/mk.Seconds()/1e9)
	}
	fmt.Printf("pipeline recurrence (flash-read -> scan-decode): total %v, bottleneck %s\n",
		res.Pipeline.Total.Round(time.Microsecond), res.Pipeline.BottleneckName())
	return nil
}

// unitSweep yields 1, 2, 4, ... up to and including the channel count.
func unitSweep(channels int) []int {
	var out []int
	for u := 1; u < channels; u *= 2 {
		out = append(out, u)
	}
	return append(out, channels)
}

func readFASTQ(path string) (*fastq.ReadSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Gzipped FASTQ is sniffed by magic, not extension, like every
	// other compress input path.
	r, err := fastq.Sniff(f, fastq.SniffOptions{Name: path})
	if err != nil {
		return nil, err
	}
	defer fastq.CloseSniffed(r)
	return fastq.Parse(r)
}

// readRef loads a reference: plain base text or single-record FASTA.
func readRef(path string) (genome.Seq, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ">") {
			continue
		}
		b.WriteString(line)
	}
	return genome.FromString(b.String())
}

// simulateSet generates a donor genome from a fresh reference and samples
// reads from it.
func simulateSet(long bool, genomeLen, nReads int, seed int64) (*fastq.ReadSet, genome.Seq, error) {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Random(rng, genomeLen)
	donor, _ := genome.Donor(rng, ref, genome.HumanLikeProfile())
	sim := simulate.New(rng, donor)
	if long {
		p := simulate.DefaultLongProfile()
		if p.MaxLen > genomeLen {
			p.MaxLen = genomeLen / 2
			p.MeanLen = genomeLen / 8
		}
		rs, err := sim.LongReads(nReads, p)
		return rs, ref, err
	}
	rs, err := sim.ShortReads(nReads, simulate.DefaultShortProfile())
	return rs, ref, err
}
